// Package postproc parses raw trace files and derives the ordering profiles
// consumed by the optimizing image build (Sec. 6.2).
//
// The framework reads the per-thread traces, decodes each path ID back into
// its fixed event sequence (validating the recorded object-identifier count
// against the path's static access count), and dispatches the events — in
// thread-creation order, then execution order — to visitor-pattern ordering
// analyses. Each analysis maintains an ordered set (first occurrence wins,
// which both deduplicates and concatenates multi-threaded orderings exactly
// as Sec. 7.1 prescribes) and finally serializes to a CSV profile.
package postproc

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"nimage/internal/ir"
	"nimage/internal/profiler"
)

// EventKind discriminates dispatched events.
type EventKind uint8

const (
	// EvCUEntry is the first-execution entry of a compilation unit.
	EvCUEntry EventKind = iota
	// EvMethodEntry is a method invocation.
	EvMethodEntry
	// EvPathStart announces a decoded path of a method (block sequence
	// available to analyses that care).
	EvPathStart
	// EvObjectAccess is a field/array access; Handle is the identifier the
	// instrumented binary stored for the object (0 = not a snapshot
	// object).
	EvObjectAccess
)

// Event is one trace event in execution order.
type Event struct {
	Kind   EventKind
	TID    int
	Sig    string // method signature for entries and path starts
	Blocks []int  // executed blocks for EvPathStart
	Handle uint64 // object identifier for EvObjectAccess
}

// Analysis consumes events one after the other in execution order.
type Analysis interface {
	Name() string
	Visit(ev Event)
}

// Dispatch decodes traces and feeds every event to the analyses. Threads
// are processed in creation (tid) order. numberings may be nil unless the
// traces contain path records.
func Dispatch(traces []profiler.ThreadTrace, table *profiler.MethodTable,
	numberings map[*ir.Method]*profiler.Numbering, analyses ...Analysis) error {

	emit := func(ev Event) {
		for _, a := range analyses {
			a.Visit(ev)
		}
	}
	for _, tr := range traces {
		words := tr.Words
		for i := 0; i < len(words); {
			tag := words[i] & 7
			idx := int(words[i] >> 3)
			switch tag {
			case 1: // CU entry
				emit(Event{Kind: EvCUEntry, TID: tr.TID, Sig: table.Signature(idx)})
				i++
			case 2: // method entry
				emit(Event{Kind: EvMethodEntry, TID: tr.TID, Sig: table.Signature(idx)})
				i++
			case 3: // path header
				if i+3 > len(words) {
					return fmt.Errorf("postproc: truncated path record at word %d of thread %d", i, tr.TID)
				}
				m := table.Method(idx)
				if m == nil {
					return fmt.Errorf("postproc: unknown method index %d in thread %d", idx, tr.TID)
				}
				nb := numberings[m]
				if nb == nil {
					return fmt.Errorf("postproc: no path numbering for %s", m.Signature())
				}
				pathID := words[i+1]
				nAcc := int(words[i+2])
				if i+3+nAcc > len(words) {
					return fmt.Errorf("postproc: truncated access list at word %d of thread %d", i, tr.TID)
				}
				blocks, err := nb.Decode(pathID)
				if err != nil {
					return fmt.Errorf("postproc: thread %d: %w", tr.TID, err)
				}
				if want := nb.PathAccessCount(blocks); want != nAcc {
					return fmt.Errorf("postproc: path %d of %s has %d static accesses but %d recorded",
						pathID, m.Signature(), want, nAcc)
				}
				emit(Event{Kind: EvPathStart, TID: tr.TID, Sig: m.Signature(), Blocks: blocks})
				for _, h := range words[i+3 : i+3+nAcc] {
					emit(Event{Kind: EvObjectAccess, TID: tr.TID, Handle: h})
				}
				i += 3 + nAcc
			default:
				return fmt.Errorf("postproc: invalid tag %d at word %d of thread %d", tag, i, tr.TID)
			}
		}
	}
	return nil
}

// CUOrderAnalysis derives the cu-ordering profile: CU root signatures in
// first-execution order (Sec. 4.1).
type CUOrderAnalysis struct {
	seen  map[string]bool
	order []string
}

// NewCUOrderAnalysis creates an empty analysis.
func NewCUOrderAnalysis() *CUOrderAnalysis {
	return &CUOrderAnalysis{seen: make(map[string]bool)}
}

// Name implements Analysis.
func (a *CUOrderAnalysis) Name() string { return "cu-order" }

// Visit implements Analysis.
func (a *CUOrderAnalysis) Visit(ev Event) {
	if ev.Kind != EvCUEntry || a.seen[ev.Sig] {
		return
	}
	a.seen[ev.Sig] = true
	a.order = append(a.order, ev.Sig)
}

// Profile returns the ordering profile.
func (a *CUOrderAnalysis) Profile() []string { return a.order }

// MethodOrderAnalysis derives the method-ordering profile: method
// signatures in first-execution order (Sec. 4.2).
type MethodOrderAnalysis struct {
	seen  map[string]bool
	order []string
}

// NewMethodOrderAnalysis creates an empty analysis.
func NewMethodOrderAnalysis() *MethodOrderAnalysis {
	return &MethodOrderAnalysis{seen: make(map[string]bool)}
}

// Name implements Analysis.
func (a *MethodOrderAnalysis) Name() string { return "method-order" }

// Visit implements Analysis.
func (a *MethodOrderAnalysis) Visit(ev Event) {
	if ev.Kind != EvMethodEntry || a.seen[ev.Sig] {
		return
	}
	a.seen[ev.Sig] = true
	a.order = append(a.order, ev.Sig)
}

// Profile returns the ordering profile.
func (a *MethodOrderAnalysis) Profile() []string { return a.order }

// HeapOrderAnalysis derives the heap-ordering profile: the identifiers of
// the accessed snapshot objects in first-access order (Sec. 5). The raw
// trace stores per-build object handles; Profile translates them to the
// 64-bit IDs of a specific identity strategy using the instrumented build's
// metadata.
type HeapOrderAnalysis struct {
	seen  map[uint64]bool
	order []uint64
}

// NewHeapOrderAnalysis creates an empty analysis.
func NewHeapOrderAnalysis() *HeapOrderAnalysis {
	return &HeapOrderAnalysis{seen: make(map[uint64]bool)}
}

// Name implements Analysis.
func (a *HeapOrderAnalysis) Name() string { return "heap-order" }

// Visit implements Analysis.
func (a *HeapOrderAnalysis) Visit(ev Event) {
	if ev.Kind != EvObjectAccess || ev.Handle == 0 || a.seen[ev.Handle] {
		return
	}
	a.seen[ev.Handle] = true
	a.order = append(a.order, ev.Handle)
}

// Handles returns the accessed object handles in first-access order.
func (a *HeapOrderAnalysis) Handles() []uint64 { return a.order }

// Profile translates the handle ordering into strategy IDs. idOf maps a
// handle to the strategy's 64-bit ID of the object in the instrumented
// build; handles it cannot map are dropped. Duplicate IDs (distinct objects
// whose IDs collide) keep their first position.
func (a *HeapOrderAnalysis) Profile(idOf func(handle uint64) (uint64, bool)) []uint64 {
	out := make([]uint64, 0, len(a.order))
	seen := make(map[uint64]bool, len(a.order))
	for _, h := range a.order {
		id, ok := idOf(h)
		if !ok || seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	return out
}

// WriteCodeProfile serializes a code-ordering profile as CSV: one method
// signature per line.
func WriteCodeProfile(w io.Writer, profile []string) error {
	bw := bufio.NewWriter(w)
	for _, sig := range profile {
		if strings.ContainsAny(sig, "\n\r") {
			return fmt.Errorf("postproc: signature %q contains newline", sig)
		}
		if _, err := bw.WriteString(sig + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCodeProfile parses a code-ordering profile. Signatures with
// embedded carriage returns are rejected: WriteCodeProfile could not
// re-serialize them, so accepting them would break round-trips.
func ReadCodeProfile(r io.Reader) ([]string, error) {
	var out []string
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.ContainsRune(line, '\r') {
			return nil, fmt.Errorf("postproc: code profile line %d: embedded carriage return", lineNo)
		}
		out = append(out, line)
	}
	return out, sc.Err()
}

// WriteHeapProfile serializes a heap-ordering profile as CSV: one
// hexadecimal 64-bit ID per line.
func WriteHeapProfile(w io.Writer, profile []uint64) error {
	bw := bufio.NewWriter(w)
	for _, id := range profile {
		if _, err := bw.WriteString(strconv.FormatUint(id, 16) + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadHeapProfile parses a heap-ordering profile.
func ReadHeapProfile(r io.Reader) ([]uint64, error) {
	var out []uint64
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		id, err := strconv.ParseUint(line, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("postproc: heap profile line %d: %w", lineNo, err)
		}
		out = append(out, id)
	}
	return out, sc.Err()
}

// FrequencyAnalysis counts how often each compilation unit (or method) is
// entered — the kind of frequency profile that steady-state layout
// algorithms such as Pettis–Hansen consume, in contrast to the paper's
// first-execution *order* profiles. It demonstrates that the framework's
// visitor design (Sec. 6.2) accommodates analyses beyond ordering.
type FrequencyAnalysis struct {
	counts map[string]int64
}

// NewFrequencyAnalysis creates an empty analysis.
func NewFrequencyAnalysis() *FrequencyAnalysis {
	return &FrequencyAnalysis{counts: make(map[string]int64)}
}

// Name implements Analysis.
func (a *FrequencyAnalysis) Name() string { return "frequency" }

// Visit implements Analysis.
func (a *FrequencyAnalysis) Visit(ev Event) {
	switch ev.Kind {
	case EvCUEntry, EvMethodEntry:
		a.counts[ev.Sig]++
	}
}

// Counts returns the per-signature entry counts.
func (a *FrequencyAnalysis) Counts() map[string]int64 { return a.counts }

// Hottest returns the n most frequently entered signatures, hottest first
// (ties broken by signature).
func (a *FrequencyAnalysis) Hottest(n int) []string {
	sigs := make([]string, 0, len(a.counts))
	for s := range a.counts {
		sigs = append(sigs, s)
	}
	sort.Slice(sigs, func(i, j int) bool {
		if a.counts[sigs[i]] != a.counts[sigs[j]] {
			return a.counts[sigs[i]] > a.counts[sigs[j]]
		}
		return sigs[i] < sigs[j]
	})
	if n > len(sigs) {
		n = len(sigs)
	}
	return sigs[:n]
}
