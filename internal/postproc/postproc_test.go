package postproc

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"nimage/internal/graal"
	"nimage/internal/heap"
	"nimage/internal/ir"
	"nimage/internal/profiler"
	"nimage/internal/vm"
)

// buildCalls constructs Main.main -> {a, b, a} with field accesses in b.
func buildCalls(t *testing.T) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("calls")
	b.Class(ir.StringClass)
	c := b.Class("C").Field("x", ir.Int())
	c.Static("obj", ir.Ref("C"))

	am := c.StaticMethod("a", 0, ir.Void())
	am.Entry().RetVoid()

	bm := c.StaticMethod("b", 0, ir.Int())
	be := bm.Entry()
	o := be.GetStatic("C", "obj")
	be.Ret(be.GetField(o, "C", "x"))

	mm := c.StaticMethod("main", 0, ir.Void())
	me := mm.Entry()
	me.CallVoid("C", "a")
	me.Call("C", "b")
	me.CallVoid("C", "a")
	me.RetVoid()
	b.SetEntry("C", "main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// trace runs the program under a tracer and returns everything postproc
// needs.
func trace(t *testing.T, p *ir.Program, kind graal.Instrumentation, prep func(*vm.Machine, *profiler.Tracer)) ([]profiler.ThreadTrace, *profiler.MethodTable, map[*ir.Method]*profiler.Numbering) {
	t.Helper()
	table := profiler.NewMethodTable(p.Methods())
	nb := table.Numberings(0)
	tr := profiler.NewTracer(kind, profiler.DumpOnFull)
	tr.MethodIdx = table.Index
	tr.Numberings = nb
	mach := vm.New(p)
	if prep != nil {
		prep(mach, tr)
	}
	mach.Hooks = tr.Hooks()
	if err := mach.RunProgram(); err != nil {
		t.Fatal(err)
	}
	return tr.Finish(false), table, nb
}

func TestCUOrderProfile(t *testing.T) {
	p := buildCalls(t)
	prep := func(m *vm.Machine, tr *profiler.Tracer) {
		m.Statics.Set(p.Class("C").LookupStatic("obj"), heap.RefVal(heap.NewObject(p.Class("C"))))
	}
	traces, table, nb := trace(t, p, graal.InstrCU, prep)
	a := NewCUOrderAnalysis()
	if err := Dispatch(traces, table, nb, a); err != nil {
		t.Fatal(err)
	}
	want := []string{"C.main(0)", "C.a(0)", "C.b(0)"}
	if !reflect.DeepEqual(a.Profile(), want) {
		t.Fatalf("profile = %v, want %v", a.Profile(), want)
	}
}

func TestMethodOrderProfileDedups(t *testing.T) {
	p := buildCalls(t)
	prep := func(m *vm.Machine, tr *profiler.Tracer) {
		m.Statics.Set(p.Class("C").LookupStatic("obj"), heap.RefVal(heap.NewObject(p.Class("C"))))
	}
	traces, table, nb := trace(t, p, graal.InstrMethod, prep)
	a := NewMethodOrderAnalysis()
	if err := Dispatch(traces, table, nb, a); err != nil {
		t.Fatal(err)
	}
	// a called twice: appears once.
	want := []string{"C.main(0)", "C.a(0)", "C.b(0)"}
	if !reflect.DeepEqual(a.Profile(), want) {
		t.Fatalf("profile = %v, want %v", a.Profile(), want)
	}
}

func TestHeapOrderProfileTranslation(t *testing.T) {
	p := buildCalls(t)
	snap := heap.NewObject(p.Class("C"))
	snap.InSnapshot = true
	prep := func(m *vm.Machine, tr *profiler.Tracer) {
		m.Statics.Set(p.Class("C").LookupStatic("obj"), heap.RefVal(snap))
		tr.ObjectHandle = func(o *heap.Object) uint64 {
			if o == snap {
				return 9
			}
			return 0
		}
	}
	traces, table, nb := trace(t, p, graal.InstrHeap, prep)
	a := NewHeapOrderAnalysis()
	if err := Dispatch(traces, table, nb, a); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Handles(), []uint64{9}) {
		t.Fatalf("handles = %v", a.Handles())
	}
	prof := a.Profile(func(h uint64) (uint64, bool) {
		if h == 9 {
			return 0xabc, true
		}
		return 0, false
	})
	if !reflect.DeepEqual(prof, []uint64{0xabc}) {
		t.Fatalf("profile = %v", prof)
	}
	// Untranslatable handles are dropped.
	empty := a.Profile(func(h uint64) (uint64, bool) { return 0, false })
	if len(empty) != 0 {
		t.Fatalf("untranslatable profile = %v", empty)
	}
}

func TestDispatchValidatesAccessCounts(t *testing.T) {
	p := buildCalls(t)
	table := profiler.NewMethodTable(p.Methods())
	nb := table.Numberings(0)
	// Forge a path record with a wrong access count.
	bm := p.Class("C").DeclaredMethod("b")
	bad := []profiler.ThreadTrace{{TID: 0, Words: []uint64{
		uint64(table.Index[bm])<<3 | 3, 0, 99,
	}}}
	err := Dispatch(bad, table, nb, NewHeapOrderAnalysis())
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		// Either truncated (no 99 words) or count mismatch is acceptable,
		// but it must not silently pass.
		if err == nil {
			t.Fatal("forged record accepted")
		}
	}
}

func TestDispatchRejectsBadTag(t *testing.T) {
	p := buildCalls(t)
	table := profiler.NewMethodTable(p.Methods())
	bad := []profiler.ThreadTrace{{TID: 0, Words: []uint64{7}}}
	if err := Dispatch(bad, table, nil); err == nil {
		t.Fatal("invalid tag accepted")
	}
}

func TestMultiThreadConcatenationOrder(t *testing.T) {
	// Events of thread 0 come before thread 1 regardless of interleaving.
	p := buildCalls(t)
	table := profiler.NewMethodTable(p.Methods())
	am := p.Class("C").DeclaredMethod("a")
	bm := p.Class("C").DeclaredMethod("b")
	traces := []profiler.ThreadTrace{
		{TID: 0, Words: []uint64{uint64(table.Index[am])<<3 | 1}},
		{TID: 1, Words: []uint64{uint64(table.Index[bm])<<3 | 1, uint64(table.Index[am])<<3 | 1}},
	}
	a := NewCUOrderAnalysis()
	if err := Dispatch(traces, table, nil, a); err != nil {
		t.Fatal(err)
	}
	want := []string{"C.a(0)", "C.b(0)"}
	if !reflect.DeepEqual(a.Profile(), want) {
		t.Fatalf("profile = %v, want %v", a.Profile(), want)
	}
}

func TestCodeProfileCSVRoundTrip(t *testing.T) {
	in := []string{"A.f(0)", "B.g(2)", "C.h(1)"}
	var buf bytes.Buffer
	if err := WriteCodeProfile(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCodeProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip: %v", out)
	}
	if err := WriteCodeProfile(&buf, []string{"bad\nsig"}); err == nil {
		t.Error("newline in signature accepted")
	}
}

func TestHeapProfileCSVRoundTrip(t *testing.T) {
	in := []uint64{0, 1, 0xdeadbeefcafe, 1 << 63}
	var buf bytes.Buffer
	if err := WriteHeapProfile(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadHeapProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip: %v", out)
	}
	if _, err := ReadHeapProfile(strings.NewReader("zzz\n")); err == nil {
		t.Error("garbage heap profile accepted")
	}
}

func TestPathStartEventsCarryBlocks(t *testing.T) {
	p := buildCalls(t)
	prep := func(m *vm.Machine, tr *profiler.Tracer) {
		m.Statics.Set(p.Class("C").LookupStatic("obj"), heap.RefVal(heap.NewObject(p.Class("C"))))
	}
	traces, table, nb := trace(t, p, graal.InstrHeap, prep)
	var paths int
	collect := analysisFunc(func(ev Event) {
		if ev.Kind == EvPathStart {
			paths++
			if len(ev.Blocks) == 0 {
				t.Error("path event without blocks")
			}
		}
	})
	if err := Dispatch(traces, table, nb, collect); err != nil {
		t.Fatal(err)
	}
	// main, a, b, a: four method executions, one acyclic path each.
	if paths != 4 {
		t.Errorf("paths = %d, want 4", paths)
	}
}

// analysisFunc adapts a function to the Analysis interface.
type analysisFunc func(Event)

func (analysisFunc) Name() string     { return "func" }
func (f analysisFunc) Visit(ev Event) { f(ev) }

func TestFrequencyAnalysis(t *testing.T) {
	p := buildCalls(t)
	prep := func(m *vm.Machine, tr *profiler.Tracer) {
		m.Statics.Set(p.Class("C").LookupStatic("obj"), heap.RefVal(heap.NewObject(p.Class("C"))))
	}
	traces, table, nb := trace(t, p, graal.InstrMethod, prep)
	a := NewFrequencyAnalysis()
	if err := Dispatch(traces, table, nb, a); err != nil {
		t.Fatal(err)
	}
	// main once, a twice, b once.
	if got := a.Counts()["C.a(0)"]; got != 2 {
		t.Errorf("count(a) = %d", got)
	}
	if got := a.Counts()["C.main(0)"]; got != 1 {
		t.Errorf("count(main) = %d", got)
	}
	hot := a.Hottest(2)
	if len(hot) != 2 || hot[0] != "C.a(0)" {
		t.Errorf("hottest = %v", hot)
	}
	if len(a.Hottest(100)) != 3 {
		t.Errorf("hottest(100) = %v", a.Hottest(100))
	}
}
