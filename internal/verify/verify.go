package verify

import (
	"fmt"
	"io"
	"strings"

	"nimage/internal/core"
	"nimage/internal/graal"
	"nimage/internal/image"
	"nimage/internal/profiler"
	"nimage/internal/workloads"
)

// Options configures an equivalence-verification run.
type Options struct {
	// Workloads to verify. Empty verifies DefaultWorkloads().
	Workloads []workloads.Workload
	// Strategies to verify per workload. Empty verifies every strategy of
	// the evaluation (Strategies()).
	Strategies []string
	// Compiler tuning; the zero value selects graal.DefaultConfig().
	Compiler graal.Config
	// BaseSeed is the build seed of the baseline/optimized builds; the
	// instrumented build uses BaseSeed+100 (the seeds differ in practice,
	// Sec. 5). Zero selects seed 1.
	BaseSeed uint64
	// Seeds appends that many seeded generated workloads
	// (workloads.Generated) to the workload set.
	Seeds int
	// Log, when non-nil, receives one progress line per workload×strategy.
	Log io.Writer
}

// Strategies returns the strategy names the verifier exercises by
// default: every strategy the registry knows — the evaluation's code- and
// heap-ordering schemes, the Pettis–Hansen baseline, and the graph-based
// serve layouts — so registering a strategy enrolls it in verification
// automatically.
func Strategies() []string {
	return core.StrategyNames()
}

// DefaultWorkloads returns the workload set verified when none is given:
// one AWFY benchmark and one microservice — the two workload shapes of the
// evaluation (batch print-and-exit vs. threaded respond-and-kill).
func DefaultWorkloads() []workloads.Workload {
	return []workloads.Workload{
		mustWorkload("Bounce"),
		mustWorkload("micronaut"),
	}
}

func mustWorkload(name string) workloads.Workload {
	w, err := workloads.ByName(name)
	if err != nil {
		panic(err)
	}
	return w
}

// Divergence is one failed equivalence check.
type Divergence struct {
	Workload string `json:"workload"`
	Strategy string `json:"strategy"`
	// Check names the failed invariant ("output", "steps", "write-journal",
	// "full-journal", "heap-state", "cu-multiset", ...).
	Check string `json:"check"`
	// Builds names the compared builds ("baseline vs optimized", ...).
	Builds string `json:"builds,omitempty"`
	// Detail describes the first divergence.
	Detail string `json:"detail"`
	// Step is the ordinal of the first diverging event (-1 when the check
	// has no event stream).
	Step int `json:"step"`
	// Symbol names the responsible CU or object when attributable.
	Symbol string `json:"symbol,omitempty"`
}

func (d Divergence) String() string {
	s := fmt.Sprintf("%s/%s %s", d.Workload, d.Strategy, d.Check)
	if d.Builds != "" {
		s += " (" + d.Builds + ")"
	}
	s += ": " + d.Detail
	if d.Symbol != "" {
		s += " [" + d.Symbol + "]"
	}
	return s
}

// Report is the outcome of a verification run.
type Report struct {
	Workloads   []string     `json:"workloads"`
	Strategies  []string     `json:"strategies"`
	Pairs       int          `json:"pairs"`  // workload×strategy pairs verified
	Checks      int          `json:"checks"` // equivalence checks evaluated
	Divergences []Divergence `json:"divergences,omitempty"`
}

// OK reports whether every check passed.
func (r *Report) OK() bool { return len(r.Divergences) == 0 }

// Summary renders a one-line outcome.
func (r *Report) Summary() string {
	if r.OK() {
		return fmt.Sprintf("verify: OK — %d checks over %d workload×strategy pairs (%s × %s)",
			r.Checks, r.Pairs, strings.Join(r.Workloads, ","), strings.Join(r.Strategies, ","))
	}
	return fmt.Sprintf("verify: FAILED — %d of %d checks diverged over %d pairs",
		len(r.Divergences), r.Checks, r.Pairs)
}

// instrKinds returns the instrumentation kinds a strategy's pipeline runs
// with, from the registry: two for the combined strategy, none for the
// graph strategies (their recording run is uninstrumented, so there is no
// instrumented build to replay differentially).
func instrKinds(strategy string) ([]graal.Instrumentation, error) {
	info, ok := core.StrategyByName(strategy)
	if !ok {
		return nil, fmt.Errorf("verify: unknown strategy %q", strategy)
	}
	return append([]graal.Instrumentation(nil), info.Instr...), nil
}

// verifier carries the per-run state of one Run call.
type verifier struct {
	opts Options
	rep  *Report
}

// Run performs the full differential + metamorphic verification and
// returns the report. Build or execution failures abort with an error;
// behavioral divergences are collected in the report instead.
func Run(opts Options) (*Report, error) {
	if len(opts.Workloads) == 0 {
		opts.Workloads = DefaultWorkloads()
	}
	for i := 0; i < opts.Seeds; i++ {
		opts.Workloads = append(opts.Workloads, workloads.Generated(uint64(i+1)))
	}
	if len(opts.Strategies) == 0 {
		opts.Strategies = Strategies()
	}
	if opts.Compiler == (graal.Config{}) {
		opts.Compiler = graal.DefaultConfig()
	}
	if opts.BaseSeed == 0 {
		opts.BaseSeed = 1
	}

	v := &verifier{opts: opts, rep: &Report{Strategies: opts.Strategies}}
	for _, w := range opts.Workloads {
		v.rep.Workloads = append(v.rep.Workloads, w.Name)
		if err := v.verifyWorkload(w); err != nil {
			return nil, err
		}
	}
	return v.rep, nil
}

func (v *verifier) logf(format string, args ...any) {
	if v.opts.Log != nil {
		fmt.Fprintf(v.opts.Log, format+"\n", args...)
	}
}

// check records one evaluated invariant; fail == "" means it held.
func (v *verifier) check(w, strategy, name, builds, fail string, step int, symbol string) {
	v.rep.Checks++
	if fail == "" {
		return
	}
	v.rep.Divergences = append(v.rep.Divergences, Divergence{
		Workload: w, Strategy: strategy, Check: name,
		Builds: builds, Detail: fail, Step: step, Symbol: symbol,
	})
}

// verifyWorkload runs the differential builds and all checks for one
// workload across every strategy. The baseline and reference builds are
// strategy-independent and built once.
func (v *verifier) verifyWorkload(w workloads.Workload) error {
	p := w.Build()
	seed := v.opts.BaseSeed
	mode := profiler.DumpOnFull
	if w.Service {
		mode = profiler.MemoryMapped
	}

	build := func(kind image.BuildKind, instr graal.Instrumentation, o image.Options) (*image.Image, error) {
		o.Kind = kind
		o.Instr = instr
		o.Compiler = v.opts.Compiler
		o.Mode = mode
		return image.Build(p, o)
	}

	v.logf("verify %s: baseline + reference builds", w.Name)
	baseImg, err := build(image.KindRegular, 0, image.Options{BuildSeed: seed})
	if err != nil {
		return fmt.Errorf("verify: %s baseline build: %w", w.Name, err)
	}
	base, err := recordRun(baseImg, w.Service, w.Args, "baseline")
	if err != nil {
		return err
	}
	// The reference build compiles like the optimized image (PGO inlining,
	// same seed) but applies no profiles: default layout order. Every
	// optimized image must be a pure permutation of it.
	refImg, err := build(image.KindOptimized, 0, image.Options{BuildSeed: seed})
	if err != nil {
		return fmt.Errorf("verify: %s reference build: %w", w.Name, err)
	}
	ref, err := recordRun(refImg, w.Service, w.Args, "reference")
	if err != nil {
		return err
	}

	instrRecs := map[graal.Instrumentation]*runRecord{}
	for _, strategy := range v.opts.Strategies {
		kinds, err := instrKinds(strategy)
		if err != nil {
			return err
		}
		var instrs []*runRecord
		for _, kind := range kinds {
			rec, ok := instrRecs[kind]
			if !ok {
				img, err := build(image.KindInstrumented, kind, image.Options{BuildSeed: seed + 100})
				if err != nil {
					return fmt.Errorf("verify: %s instrumented build (%v): %w", w.Name, kind, err)
				}
				rec, err = recordRun(img, w.Service, w.Args, "instrumented/"+kind.String())
				if err != nil {
					return err
				}
				instrRecs[kind] = rec
			}
			instrs = append(instrs, rec)
		}

		v.logf("verify %s: strategy %q pipeline", w.Name, strategy)
		res, err := image.BuildOptimized(p, image.PipelineOptions{
			Compiler:         v.opts.Compiler,
			Strategy:         strategy,
			InstrumentedSeed: seed + 100,
			OptimizedSeed:    seed,
			Mode:             mode,
			Args:             w.Args,
			Service:          w.Service,
		})
		if err != nil {
			return fmt.Errorf("verify: %s pipeline (%s): %w", w.Name, strategy, err)
		}
		opt, err := recordRun(res.Optimized, w.Service, w.Args, "optimized")
		if err != nil {
			return err
		}

		// Identity reorder: rebuild with profiles describing the optimized
		// image's own layout; the result must reproduce it exactly.
		code, heapProf := identityProfiles(res.Optimized)
		opt2Img, err := build(image.KindOptimized, 0, image.Options{
			BuildSeed:    seed,
			CodeProfile:  code,
			HeapProfile:  heapProf,
			HeapStrategy: seqIDStrategy{},
		})
		if err != nil {
			return fmt.Errorf("verify: %s identity rebuild (%s): %w", w.Name, strategy, err)
		}
		opt2, err := recordRun(opt2Img, w.Service, w.Args, "identity-reorder")
		if err != nil {
			return err
		}

		v.rep.Pairs++
		v.differential(w, strategy, base, instrs, ref, opt, opt2)
		v.metamorphic(w.Name, strategy, refImg, res.Optimized, opt2Img)
		for _, c := range recipeChecks(res.Optimized) {
			v.check(w.Name, strategy, c.name, "optimized vs baked", c.fail, -1, "")
		}
	}
	return nil
}

// differential asserts the execution equivalences of one strategy's build
// set (see the package comment for which builds each invariant spans).
func (v *verifier) differential(w workloads.Workload, strategy string, base *runRecord, instrs []*runRecord, ref, opt, opt2 *runRecord) {
	everyBuild := append([]*runRecord{base}, instrs...)
	everyBuild = append(everyBuild, ref, opt, opt2)

	for _, r := range everyBuild[1:] {
		builds := base.build + " vs " + r.build

		fail, step := "", -1
		if base.outputDigest != r.outputDigest {
			step, fail = firstOutputDivergence(base, r)
		}
		v.check(w.Name, strategy, "output", builds, fail, step, "")

		fail = ""
		if base.steps != r.steps {
			fail = fmtCount("executed %d vs %d instructions", base.steps, r.steps)
		}
		v.check(w.Name, strategy, "steps", builds, fail, -1, "")

		fail, step = "", -1
		symbol := ""
		if base.writeDigest != r.writeDigest {
			step, fail, symbol = firstJournalDivergence(base, r, base.writes, r.writes)
		}
		v.check(w.Name, strategy, "write-journal", builds, fail, step, symbol)
	}

	// Full journal (including intern additions) and final heap state are
	// only comparable across builds sharing seed and compilation.
	sameCompilation := []*runRecord{ref, opt, opt2}
	for _, r := range sameCompilation[1:] {
		builds := ref.build + " vs " + r.build

		fail, step := "", -1
		symbol := ""
		if ref.journalDigest != r.journalDigest {
			step, fail, symbol = firstJournalDivergence(ref, r, ref.all, r.all)
		}
		v.check(w.Name, strategy, "full-journal", builds, fail, step, symbol)

		fail = ""
		if ref.heapDigest != r.heapDigest {
			fail = fmtCount("final heap digests differ: %#x vs %#x", ref.heapDigest, r.heapDigest)
		}
		v.check(w.Name, strategy, "heap-state", builds, fail, -1, "")
	}

	// Fault counts are invariant under the identity reorder: same layout,
	// same access sequence, same paging behavior.
	fail := ""
	if opt.textFaults != opt2.textFaults || opt.heapFaults != opt2.heapFaults || opt.totalFaults != opt2.totalFaults {
		fail = fmtCount("faults differ: text %d/%d heap %d/%d total %d/%d",
			opt.textFaults, opt2.textFaults, opt.heapFaults, opt2.heapFaults,
			opt.totalFaults, opt2.totalFaults)
	}
	v.check(w.Name, strategy, "identity-faults", opt.build+" vs "+opt2.build, fail, -1, "")
}

// metamorphic asserts the layout invariants of one strategy's images.
func (v *verifier) metamorphic(w, strategy string, ref, opt, opt2 *image.Image) {
	for _, c := range permutationChecks(ref, opt) {
		v.check(w, strategy, c.name, "reference vs optimized", c.fail, -1, "")
	}
	for _, img := range []*image.Image{ref, opt, opt2} {
		for _, c := range offsetChecks(img) {
			v.check(w, strategy, c.name, "", c.fail, -1, "")
		}
	}
	for _, c := range statsChecks(opt) {
		v.check(w, strategy, c.name, "", c.fail, -1, "")
	}
	for _, c := range identityChecks(opt, opt2) {
		v.check(w, strategy, c.name, "optimized vs identity-reorder", c.fail, -1, "")
	}
}
