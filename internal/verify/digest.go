// Package verify checks that the profile-guided reordering pipeline is
// semantics-preserving: the optimized image must behave identically to the
// baseline (differential execution), be a pure permutation of an
// unreordered build (metamorphic layout invariants), and the codecs feeding
// the pipeline must reject hostile input (fuzzed separately).
//
// The checks are calibrated to the simulator's deliberate non-determinism
// (Sec. 2 of the paper): build seeds perturb class-initializer order and
// salt clinit-computed values, so heap *contents* legitimately differ
// across seeds, and regular vs PGO compilations fold different constants,
// so interned-string sets legitimately differ across build kinds. What must
// never differ is the program's observable behavior:
//
//   - printed output and response events — across every build;
//   - executed instruction count — across every build;
//   - the stream of journaled mutations of build-time state (first
//     overwrites of snapshot objects and statics) — across every build;
//   - intern additions and final heap state — across builds sharing a seed
//     and compilation (the optimized image vs its identity-layout twin).
package verify

import (
	"fmt"
	"strconv"

	"nimage/internal/heap"
	"nimage/internal/ir"
	"nimage/internal/murmur"
	"nimage/internal/vm"
)

// digestSeed starts every chained digest at a fixed, arbitrary value.
const digestSeed = 0x76657269667921 // "verify!"

// chain folds s into a running digest.
func chain(h uint64, s string) uint64 {
	return murmur.Sum64Seed([]byte(s), h)
}

// digestStrings digests a rendered event stream.
func digestStrings(events []string) uint64 {
	h := uint64(digestSeed)
	for _, e := range events {
		h = chain(h, e)
	}
	return h
}

// renderValue renders a value shallowly and stably across builds: no
// pointer identities, no layout positions. References render as their type
// (strings as their contents), so the rendering of a journaled overwrite is
// identical across builds even though the referee is a different Go object.
func renderValue(v heap.Value) string {
	switch v.Kind {
	case heap.VInt:
		return "i:" + strconv.FormatInt(v.Bits, 10)
	case heap.VFloat:
		return "f:" + strconv.FormatInt(v.Bits, 10)
	default:
		o := v.Ref
		switch {
		case o == nil:
			return "null"
		case o.IsString():
			return "s:" + o.Str
		case o.IsArray:
			return o.TypeName() + "[" + strconv.Itoa(o.Len()) + "]"
		default:
			return o.TypeName()
		}
	}
}

// renderJournalEvent renders one journaled mutation stably across builds:
// the mutated location is named by type and field/index, never by object
// identity or layout position.
func renderJournalEvent(e vm.JournalEvent) string {
	switch e.Kind {
	case "field":
		return "field " + e.Field.Signature() + " of " + e.Object.TypeName() + " prev " + renderValue(e.Prev)
	case "elem":
		return "elem " + e.Object.TypeName() + "[" + strconv.Itoa(e.Index) + "] prev " + renderValue(e.Prev)
	case "static":
		return "static " + e.Field.Signature() + " prev " + renderValue(e.Prev)
	default:
		return "intern " + e.Literal
	}
}

// maxHeapNodes bounds the deep-digest traversal; the digest stays
// well-defined (the walk order is deterministic, so truncation hits the
// same node in every build of the same program).
const maxHeapNodes = 1 << 20

// heapDigester walks the reachable heap from the program's static fields
// and digests final values deeply. Cycles are cut by numbering objects in
// visit order — a deterministic, identity-free naming.
type heapDigester struct {
	h     uint64
	seen  map[*heap.Object]int
	nodes int
}

// heapStateDigest digests the final heap state of a finished run: every
// static field of every class, traversed deeply in program declaration
// order. Statics reach all live build-time state; the digest is independent
// of snapshot membership (which differs across build kinds through
// constant folding) and of layout order.
func heapStateDigest(p *ir.Program, statics *heap.Statics) uint64 {
	d := &heapDigester{h: digestSeed, seen: make(map[*heap.Object]int)}
	for _, c := range p.Classes {
		for _, f := range c.Statics {
			d.h = chain(d.h, "static "+f.Signature())
			d.walk(statics.Get(f))
		}
	}
	return d.h
}

func (d *heapDigester) walk(v heap.Value) {
	if v.Kind != heap.VRef {
		d.h = chain(d.h, renderValue(v))
		return
	}
	o := v.Ref
	if o == nil {
		d.h = chain(d.h, "null")
		return
	}
	if ord, ok := d.seen[o]; ok {
		d.h = chain(d.h, "back:"+strconv.Itoa(ord))
		return
	}
	d.seen[o] = len(d.seen)
	d.nodes++
	if d.nodes > maxHeapNodes {
		d.h = chain(d.h, "truncated")
		return
	}
	d.h = chain(d.h, o.TypeName())
	switch {
	case o.IsString():
		d.h = chain(d.h, "s:"+o.Str)
	case o.Packed():
		// Packed byte arrays have deterministic pseudo-contents fully
		// determined by their length.
		d.h = chain(d.h, "packed:"+strconv.Itoa(o.Len()))
	case o.IsArray:
		d.h = chain(d.h, "len:"+strconv.Itoa(o.Len()))
		for i := range o.Elems {
			d.walk(o.Elems[i])
		}
	default:
		for i := range o.Fields {
			d.walk(o.Fields[i])
		}
	}
}

// fmtCount is a tiny helper for check details.
func fmtCount(format string, args ...any) string { return fmt.Sprintf(format, args...) }
