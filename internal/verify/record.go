package verify

import (
	"fmt"
	"strconv"

	"nimage/internal/heap"
	"nimage/internal/image"
	"nimage/internal/ir"
	"nimage/internal/osim"
	"nimage/internal/vm"
)

// outEvent is one observable output event of a run (print or respond),
// attributed to the innermost executing method and its compilation unit.
type outEvent struct {
	step   int64
	tid    int
	text   string
	method string
	cu     string
}

func (e outEvent) String() string {
	return fmt.Sprintf("step %d tid %d: %s (in %s, CU %s)", e.step, e.tid, e.text, e.method, e.cu)
}

// runRecord captures everything the verifier compares about one execution
// of one image.
type runRecord struct {
	build string // label: "baseline", "instrumented", "optimized", ...

	outputs      []outEvent
	outputDigest uint64

	// journal holds the raw journal events; writes/all are their stable
	// renderings (writes excludes intern additions, whose cross-kind
	// differences are legitimate constant-folding effects).
	journal       []vm.JournalEvent
	writes        []string
	all           []string
	writeDigest   uint64
	journalDigest uint64

	heapDigest uint64
	steps      int64

	textFaults, heapFaults, totalFaults int64

	// names resolves diverging objects to build-stable symbols.
	names map[*heap.Object]string
}

// recordRun executes the image cold on a fresh OS and records its
// observable behavior. Output events are attributed to the innermost
// method on the executing thread's stack (maintained via the method
// enter/exit hooks) and to the CU compiled from it.
func recordRun(img *image.Image, service bool, args []int64, build string) (*runRecord, error) {
	rec := &runRecord{build: build}
	o := osim.NewOS(osim.SSD())
	stacks := make(map[int][]*ir.Method)
	cuOf := func(tid int) (string, string) {
		st := stacks[tid]
		if len(st) == 0 {
			return "", ""
		}
		m := st[len(st)-1]
		for i := len(st) - 1; i >= 0; i-- {
			if cu := img.CUOf(st[i]); cu != nil {
				return m.Signature(), cu.Signature()
			}
		}
		return m.Signature(), ""
	}
	var machine *vm.Machine
	hooks := vm.Hooks{
		OnMethodEnter: func(tid int, m *ir.Method) {
			stacks[tid] = append(stacks[tid], m)
		},
		OnMethodExit: func(tid int, m *ir.Method) {
			if st := stacks[tid]; len(st) > 0 {
				stacks[tid] = st[:len(st)-1]
			}
		},
		OnPrint: func(tid int, v heap.Value) {
			method, cu := cuOf(tid)
			rec.outputs = append(rec.outputs, outEvent{
				step: machine.Steps, tid: tid, text: renderValue(v), method: method, cu: cu,
			})
		},
		OnRespond: func() {
			rec.outputs = append(rec.outputs, outEvent{step: machine.Steps, text: "<respond>"})
		},
	}
	proc, err := img.NewProcess(o, hooks)
	if err != nil {
		return nil, fmt.Errorf("verify: starting %s process: %w", build, err)
	}
	defer proc.Close()
	machine = proc.Machine
	machine.StopOnRespond = service
	if err := proc.Run(args...); err != nil {
		return nil, fmt.Errorf("verify: running %s build: %w", build, err)
	}

	rec.steps = machine.Steps
	rec.journal = machine.JournalEvents()
	for _, e := range rec.journal {
		r := renderJournalEvent(e)
		rec.all = append(rec.all, r)
		if e.Kind != "intern" {
			rec.writes = append(rec.writes, r)
		}
	}
	rec.writeDigest = digestStrings(rec.writes)
	rec.journalDigest = digestStrings(rec.all)
	rendered := make([]string, len(rec.outputs))
	for i, e := range rec.outputs {
		rendered[i] = e.text + "@" + strconv.Itoa(e.tid)
	}
	rec.outputDigest = digestStrings(rendered)
	rec.heapDigest = heapStateDigest(img.Program, img.Statics)

	st := proc.Stats()
	rec.textFaults = st.TextFaults.Total()
	rec.heapFaults = st.HeapFaults.Total()
	rec.totalFaults = st.TotalFaults
	rec.names = img.ObjectNames()
	return rec, nil
}

// firstOutputDivergence returns the ordinal and description of the first
// differing output event between two runs, or -1 when the streams agree.
func firstOutputDivergence(a, b *runRecord) (int, string) {
	n := len(a.outputs)
	if len(b.outputs) < n {
		n = len(b.outputs)
	}
	for i := 0; i < n; i++ {
		if a.outputs[i].text != b.outputs[i].text || a.outputs[i].tid != b.outputs[i].tid {
			return i, fmt.Sprintf("%s: %v; %s: %v", a.build, a.outputs[i], b.build, b.outputs[i])
		}
	}
	if len(a.outputs) != len(b.outputs) {
		return n, fmtCount("%s printed %d events, %s printed %d", a.build, len(a.outputs), b.build, len(b.outputs))
	}
	return -1, ""
}

// firstJournalDivergence returns the ordinal, description, and responsible
// symbol of the first differing rendered journal event between two runs
// (comparing the given renderings), or -1 when the streams agree.
func firstJournalDivergence(a, b *runRecord, as, bs []string) (int, string, string) {
	n := len(as)
	if len(bs) < n {
		n = len(bs)
	}
	for i := 0; i < n; i++ {
		if as[i] != bs[i] {
			return i, fmt.Sprintf("%s: %s; %s: %s", a.build, as[i], b.build, bs[i]),
				a.symbolOfEvent(as[i]) + " / " + b.symbolOfEvent(bs[i])
		}
	}
	if len(as) != len(bs) {
		return n, fmtCount("%s journaled %d events, %s journaled %d", a.build, len(as), b.build, len(bs)), ""
	}
	return -1, "", ""
}

// symbolOfEvent resolves the rendered journal event back to the
// build-stable name of the mutated object (attribution naming).
func (r *runRecord) symbolOfEvent(rendered string) string {
	for i, s := range r.all {
		if s != rendered {
			continue
		}
		e := r.journal[i]
		if e.Object != nil {
			if name, ok := r.names[e.Object]; ok {
				return name
			}
			return e.Object.TypeName()
		}
		if e.Field != nil {
			return e.Field.Signature()
		}
		return "intern:" + e.Literal
	}
	return ""
}
