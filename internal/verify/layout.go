package verify

import (
	"fmt"
	"sort"
	"strconv"

	"nimage/internal/graal"
	"nimage/internal/heap"
	"nimage/internal/image"
)

// cuDigest renders a compilation unit's identity and compiled body:
// everything that must survive reordering byte-for-byte. Two CUs digest
// equal iff the same root was inlined the same way with the same folded
// constants — i.e. the reorder moved the unit without recompiling it.
func cuDigest(cu *graal.CompilationUnit) uint64 {
	h := chain(digestSeed, "cu "+cu.Root.Signature())
	h = chain(h, "size "+strconv.Itoa(cu.Size))
	for _, m := range cu.Inlined {
		h = chain(h, "inl "+m.Signature())
	}
	for _, c := range cu.Constants {
		h = chain(h, fmt.Sprintf("const %q folded %v src %s", c.Literal, c.Folded, c.Source.Signature()))
	}
	return h
}

// objDigest renders a snapshot object's build-time identity shallowly
// (type, size, contents one level deep). Shallow is deliberate: a deep
// digest would make every object's digest depend on most of the heap and
// mask which object actually changed.
func objDigest(o *heap.Object) uint64 {
	h := chain(digestSeed, "obj "+o.TypeName())
	h = chain(h, "size "+strconv.FormatInt(o.Size, 10))
	h = chain(h, "reason "+o.Reason)
	switch {
	case o.IsString():
		h = chain(h, "s:"+o.Str)
	case o.Packed():
		h = chain(h, "packed:"+strconv.Itoa(o.Len()))
	case o.IsArray:
		h = chain(h, "len:"+strconv.Itoa(o.Len()))
		for i := range o.Elems {
			h = chain(h, renderValue(o.Elems[i]))
		}
	default:
		for i := range o.Fields {
			h = chain(h, renderValue(o.Fields[i]))
		}
	}
	return h
}

// multisetDiff compares two digest multisets and reports up to a few
// digests whose counts differ, tagged with which side has more.
func multisetDiff(a, b map[uint64]int) string {
	keys := make(map[uint64]bool, len(a)+len(b))
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	var diffs []string
	for k := range keys {
		if a[k] != b[k] {
			diffs = append(diffs, fmt.Sprintf("%#x: %d vs %d", k, a[k], b[k]))
		}
	}
	sort.Strings(diffs)
	if len(diffs) > 4 {
		diffs = append(diffs[:4], fmtCount("… %d more", len(diffs)-4))
	}
	if len(diffs) == 0 {
		return ""
	}
	return fmt.Sprintf("%d differing digests: %v", len(diffs), diffs)
}

// cuMultiset digests every laid-out CU of an image.
func cuMultiset(img *image.Image) map[uint64]int {
	m := make(map[uint64]int, len(img.CULayout))
	for _, cu := range img.CULayout {
		m[cuDigest(cu)]++
	}
	return m
}

// objMultiset digests every laid-out snapshot object of an image.
func objMultiset(img *image.Image) map[uint64]int {
	m := make(map[uint64]int, len(img.ObjLayout))
	for _, o := range img.ObjLayout {
		m[objDigest(o)]++
	}
	return m
}

// layoutCheck is one named metamorphic invariant over a pair of images
// (or a single image); fail returns "" when the invariant holds.
type layoutCheck struct {
	name string
	fail string
}

// permutationChecks asserts that opt is a pure permutation of ref: same CU
// bodies (as a multiset), same object set, same section extents. ref is a
// KindOptimized build with the same seed and compiler but no profiles, so
// the two images differ only in layout order.
func permutationChecks(ref, opt *image.Image) []layoutCheck {
	var cs []layoutCheck
	add := func(name, fail string) {
		cs = append(cs, layoutCheck{name: name, fail: fail})
	}

	if d := multisetDiff(cuMultiset(ref), cuMultiset(opt)); d != "" {
		add("cu-multiset", "CU bodies are not a permutation: "+d)
	} else {
		add("cu-multiset", "")
	}
	if d := multisetDiff(objMultiset(ref), objMultiset(opt)); d != "" {
		add("object-multiset", "snapshot objects are not a permutation: "+d)
	} else {
		add("object-multiset", "")
	}

	sec := ""
	switch {
	case ref.TextSection != opt.TextSection:
		sec = fmt.Sprintf(".text differs: %+v vs %+v", ref.TextSection, opt.TextSection)
	case ref.NativeOff != opt.NativeOff || ref.NativeLen != opt.NativeLen:
		sec = fmt.Sprintf("native tail differs: [%d,+%d) vs [%d,+%d)",
			ref.NativeOff, ref.NativeLen, opt.NativeOff, opt.NativeLen)
	case ref.HeapSection.Off != opt.HeapSection.Off:
		sec = fmt.Sprintf(".svm_heap offset differs: %d vs %d", ref.HeapSection.Off, opt.HeapSection.Off)
	case abs64(ref.HeapSection.Len-opt.HeapSection.Len) > 8:
		// The heap section length may legitimately differ by the final
		// object's alignment padding (objects are padded to 8 bytes; the
		// section ends at the last object's end).
		sec = fmt.Sprintf(".svm_heap length differs by more than padding: %d vs %d",
			ref.HeapSection.Len, opt.HeapSection.Len)
	case ref.FileSize != opt.FileSize:
		sec = fmt.Sprintf("file size differs: %d vs %d", ref.FileSize, opt.FileSize)
	}
	add("sections", sec)
	return cs
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// offsetChecks asserts the internal geometry of one image: CU offsets
// strictly increasing, 16-aligned, and inside [.text, native); object
// offsets 8-aligned and non-overlapping in layout order.
func offsetChecks(img *image.Image) []layoutCheck {
	var cs []layoutCheck
	cuFail := ""
	prevEnd := img.TextSection.Off
	for _, cu := range img.CULayout {
		off := img.CUOffset[cu]
		switch {
		case off%16 != 0:
			cuFail = fmt.Sprintf("CU %s at unaligned offset %d", cu.Root.Signature(), off)
		case off < prevEnd:
			cuFail = fmt.Sprintf("CU %s at %d overlaps previous end %d", cu.Root.Signature(), off, prevEnd)
		case off+int64(cu.Size) > img.NativeOff:
			cuFail = fmt.Sprintf("CU %s [%d,+%d) extends past native tail at %d",
				cu.Root.Signature(), off, cu.Size, img.NativeOff)
		}
		if cuFail != "" {
			break
		}
		prevEnd = off + int64(cu.Size)
	}
	cs = append(cs, layoutCheck{name: "cu-offsets", fail: cuFail})

	objFail := ""
	var prev int64
	for _, o := range img.ObjLayout {
		switch {
		case o.Offset%8 != 0:
			objFail = fmt.Sprintf("object %s at unaligned heap offset %d", o.TypeName(), o.Offset)
		case o.Offset < prev:
			objFail = fmt.Sprintf("object %s at %d overlaps previous end %d", o.TypeName(), o.Offset, prev)
		case o.Offset+o.Size > img.HeapSection.Len:
			objFail = fmt.Sprintf("object %s [%d,+%d) extends past heap section length %d",
				o.TypeName(), o.Offset, o.Size, img.HeapSection.Len)
		}
		if objFail != "" {
			break
		}
		prev = o.Offset + o.Size
	}
	cs = append(cs, layoutCheck{name: "object-offsets", fail: objFail})
	return cs
}

// statsChecks asserts that the image's reordering bookkeeping is
// internally consistent: the heap MatchResult partitions the snapshot and
// the code-order stats stay within profile and layout bounds.
func statsChecks(img *image.Image) []layoutCheck {
	var cs []layoutCheck
	add := func(name, fail string) {
		cs = append(cs, layoutCheck{name: name, fail: fail})
	}

	heapFail := ""
	// The stats are only populated when a heap profile was applied (their
	// Order is the layout); unprofiled builds leave them zero.
	if mr := img.HeapMatchStats; mr.Order != nil {
		total := len(img.Snapshot.Objects)
		switch {
		case mr.MatchedObjects+mr.UnmatchedObjects != total:
			heapFail = fmtCount("matched %d + unmatched %d != %d snapshot objects",
				mr.MatchedObjects, mr.UnmatchedObjects, total)
		case mr.CollisionObjects > mr.MatchedObjects:
			heapFail = fmtCount("collision objects %d exceed matched %d",
				mr.CollisionObjects, mr.MatchedObjects)
		case mr.MatchedEntries > mr.ProfileLen:
			heapFail = fmtCount("matched entries %d exceed profile length %d",
				mr.MatchedEntries, mr.ProfileLen)
		case len(mr.Order) != total:
			heapFail = fmtCount("layout holds %d objects, snapshot %d", len(mr.Order), total)
		}
	}
	add("heap-match-stats", heapFail)

	codeFail := ""
	if st := img.CodeOrderStats; st.Order != nil {
		switch {
		case st.Matched > st.ProfileLen:
			codeFail = fmtCount("matched %d CUs exceed profile length %d", st.Matched, st.ProfileLen)
		case st.Matched > len(img.CULayout):
			codeFail = fmtCount("matched %d CUs exceed layout size %d", st.Matched, len(img.CULayout))
		case len(st.Order) != len(img.CULayout):
			codeFail = fmtCount("order holds %d CUs, layout %d", len(st.Order), len(img.CULayout))
		}
	}
	add("code-order-stats", codeFail)
	return cs
}

// seqIDStrategy is the verifier's private heap-ID scheme for the identity
// reorder: every object's ID is its collision-free build sequence number,
// so a profile listing the current layout order reproduces it exactly. A
// real strategy would not do (its IDs collide, and collision groups get
// pulled together), which is why the identity pass needs its own scheme.
type seqIDStrategy struct{}

func (seqIDStrategy) Name() string { return "verify-identity" }

func (seqIDStrategy) AssignIDs(s *heap.Snapshot) map[*heap.Object]uint64 {
	ids := make(map[*heap.Object]uint64, len(s.Objects))
	for _, o := range s.Objects {
		ids[o] = uint64(o.SeqID) + 1
	}
	return ids
}

// identityProfiles derives, from an already-built optimized image, the
// profiles that describe its own layout: the CU signatures in layout order
// and the seq-IDs of its objects in layout order.
func identityProfiles(opt *image.Image) (code []string, heapProf []uint64) {
	code = make([]string, 0, len(opt.CULayout))
	for _, cu := range opt.CULayout {
		code = append(code, cu.Signature())
	}
	heapProf = make([]uint64, 0, len(opt.ObjLayout))
	for _, o := range opt.ObjLayout {
		heapProf = append(heapProf, uint64(o.SeqID)+1)
	}
	return code, heapProf
}

// identityChecks asserts that opt2 — rebuilt from profiles describing
// opt's own layout — reproduces opt exactly: per-signature CU offsets and
// per-seq-ID object offsets. Layout is a deterministic function of the
// (profile, program, seed) triple; feeding a layout back to itself is the
// metamorphic fixed point.
func identityChecks(opt, opt2 *image.Image) []layoutCheck {
	var cs []layoutCheck
	add := func(name, fail string) {
		cs = append(cs, layoutCheck{name: name, fail: fail})
	}

	cuFail := ""
	if len(opt.CULayout) != len(opt2.CULayout) {
		cuFail = fmtCount("CU counts differ: %d vs %d", len(opt.CULayout), len(opt2.CULayout))
	} else {
		off2 := make(map[string]int64, len(opt2.CULayout))
		for _, cu := range opt2.CULayout {
			off2[cu.Signature()] = opt2.CUOffset[cu]
		}
		for _, cu := range opt.CULayout {
			if got, ok := off2[cu.Signature()]; !ok || got != opt.CUOffset[cu] {
				cuFail = fmt.Sprintf("CU %s moved: %d vs %d", cu.Signature(), opt.CUOffset[cu], got)
				break
			}
		}
	}
	add("identity-cu-offsets", cuFail)

	objFail := ""
	if len(opt.ObjLayout) != len(opt2.ObjLayout) {
		objFail = fmtCount("object counts differ: %d vs %d", len(opt.ObjLayout), len(opt2.ObjLayout))
	} else {
		off2 := make(map[uint64]int64, len(opt2.ObjLayout))
		for _, o := range opt2.ObjLayout {
			off2[uint64(o.SeqID)] = o.Offset
		}
		for _, o := range opt.ObjLayout {
			if got, ok := off2[uint64(o.SeqID)]; !ok || got != o.Offset {
				objFail = fmt.Sprintf("object %s (seq %d) moved: %d vs %d", o.TypeName(), o.SeqID, o.Offset, got)
				break
			}
		}
	}
	add("identity-object-offsets", objFail)
	return cs
}

// PermutationFailures runs the layout-permutation invariants (CU/object
// digest multisets, section extents, offset validity) between a
// reference image and a claimed reorder of it, returning one
// "check: failure" line per violated invariant — empty means opt is a
// pure permutation of ref. ref must be a KindOptimized build with the
// same seed and compiler but no profiles applied. Exported for external
// metamorphic tests (the layout search asserts every candidate it bakes
// through this).
func PermutationFailures(ref, opt *image.Image) []string {
	var out []string
	for _, c := range append(permutationChecks(ref, opt), offsetChecks(opt)...) {
		if c.fail != "" {
			out = append(out, c.name+": "+c.fail)
		}
	}
	return out
}
