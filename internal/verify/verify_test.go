package verify

import (
	"strings"
	"testing"

	"nimage/internal/core"
	"nimage/internal/graal"
	"nimage/internal/image"
	"nimage/internal/workloads"
)

// buildOptimizedFor runs a workload's ordering pipeline and returns the
// optimized image.
func buildOptimizedFor(t *testing.T, w workloads.Workload, strategy string) (*image.Image, error) {
	t.Helper()
	res, err := image.BuildOptimized(w.Build(), image.PipelineOptions{
		Compiler:         graal.DefaultConfig(),
		Strategy:         strategy,
		InstrumentedSeed: 101,
		OptimizedSeed:    1,
		Args:             w.Args,
		Service:          w.Service,
	})
	if err != nil {
		return nil, err
	}
	return res.Optimized, nil
}

// requireOK runs the verifier and fails the test on any divergence,
// printing each one (the divergence details are the debugging payload).
func requireOK(t *testing.T, opts Options) *Report {
	t.Helper()
	rep, err := Run(opts)
	if err != nil {
		t.Fatalf("verify.Run: %v", err)
	}
	for _, d := range rep.Divergences {
		t.Errorf("divergence: %s", d)
	}
	if t.Failed() {
		t.Fatalf("%s", rep.Summary())
	}
	return rep
}

func oneWorkload(t *testing.T, name string) []workloads.Workload {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return []workloads.Workload{w}
}

// TestEquivalenceBounceAllStrategies is the core differential check: every
// strategy's optimized Bounce build must behave identically to the
// baseline and be a permutation of the unordered reference.
func TestEquivalenceBounceAllStrategies(t *testing.T) {
	rep := requireOK(t, Options{Workloads: oneWorkload(t, "Bounce")})
	if rep.Pairs != len(Strategies()) {
		t.Fatalf("verified %d pairs, want %d", rep.Pairs, len(Strategies()))
	}
	if rep.Checks == 0 {
		t.Fatal("no checks evaluated")
	}
}

// TestEquivalenceMicroservice exercises the service shape: threads,
// respond-and-stop, runtime interning, memory-mapped tracing.
func TestEquivalenceMicroservice(t *testing.T) {
	requireOK(t, Options{
		Workloads:  oneWorkload(t, "micronaut"),
		Strategies: []string{core.StrategyCU, core.StrategyHeapPath},
	})
}

// TestEquivalenceGenerated runs seeded random programs through the
// verifier: build/run paths no hand-written workload covers.
func TestEquivalenceGenerated(t *testing.T) {
	rep := requireOK(t, Options{
		Workloads:  []workloads.Workload{workloads.Generated(1), workloads.Generated(2)},
		Strategies: []string{core.StrategyCU, core.StrategyHeapPath},
	})
	if got := strings.Join(rep.Workloads, ","); got != "Gen0001,Gen0002" {
		t.Fatalf("workloads = %q", got)
	}
}

// TestRecipeRoundTripChecksRun asserts the portable-recipe round trip is
// part of every verified pair: each strategy contributes the four
// recipe-roundtrip checks and all of them hold.
func TestRecipeRoundTripChecksRun(t *testing.T) {
	w, err := workloads.ByName("Bounce")
	if err != nil {
		t.Fatal(err)
	}
	img, err := buildOptimizedFor(t, w, core.StrategyCombined)
	if err != nil {
		t.Fatal(err)
	}
	cs := recipeChecks(img)
	if len(cs) != 4 {
		t.Fatalf("recipeChecks returned %d checks, want 4", len(cs))
	}
	names := map[string]bool{}
	for _, c := range cs {
		names[c.name] = true
		if c.fail != "" {
			t.Errorf("%s: %s", c.name, c.fail)
		}
	}
	for _, want := range []string{
		"recipe-roundtrip-codec", "recipe-roundtrip-sections",
		"recipe-roundtrip-cu-offsets", "recipe-roundtrip-object-offsets",
	} {
		if !names[want] {
			t.Errorf("check %s missing", want)
		}
	}
}

// TestGeneratedDeterministic asserts the generator is a pure function of
// its seed.
func TestGeneratedDeterministic(t *testing.T) {
	a := workloads.Generated(7).Build()
	b := workloads.Generated(7).Build()
	if len(a.Classes) != len(b.Classes) {
		t.Fatalf("class counts differ: %d vs %d", len(a.Classes), len(b.Classes))
	}
	for i := range a.Classes {
		if a.Classes[i].Name != b.Classes[i].Name {
			t.Fatalf("class %d: %s vs %s", i, a.Classes[i].Name, b.Classes[i].Name)
		}
	}
	c := workloads.Generated(8).Build()
	if len(a.Classes) == len(c.Classes) {
		// Different seeds usually differ in shape; identical class counts
		// are possible but the methods should still differ somewhere. Spot
		// check the benchmark arg instead, which is seed-derived.
		if workloads.Generated(7).Args[0] == workloads.Generated(8).Args[0] &&
			len(a.Classes) == len(c.Classes) {
			t.Log("seeds 7 and 8 coincide in size; acceptable but unusual")
		}
	}
}
