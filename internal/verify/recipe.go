package verify

import (
	"bytes"
	"fmt"

	"nimage/internal/image"
)

// recipeChecks round-trips an image through its portable recipe — capture
// (RecipeOf), serialize (WriteRecipe), parse (ReadRecipe), rebuild (Bake)
// — and asserts the baked image reproduces the original layout
// bit-identically. Builds are deterministic functions of the recipe, so
// the .nimg container must preserve enough to reconstruct every CU and
// object offset exactly.
func recipeChecks(img *image.Image) []layoutCheck {
	var cs []layoutCheck
	add := func(name, fail string) {
		cs = append(cs, layoutCheck{name: name, fail: fail})
	}

	var buf bytes.Buffer
	if err := image.WriteRecipe(&buf, image.RecipeOf(img)); err != nil {
		add("recipe-roundtrip-codec", fmt.Sprintf("serializing recipe: %v", err))
		return cs
	}
	r, err := image.ReadRecipe(&buf)
	if err != nil {
		add("recipe-roundtrip-codec", fmt.Sprintf("parsing recipe: %v", err))
		return cs
	}
	baked, err := r.Bake()
	if err != nil {
		add("recipe-roundtrip-codec", fmt.Sprintf("baking recipe: %v", err))
		return cs
	}
	add("recipe-roundtrip-codec", "")

	secFail := ""
	if baked.TextSection != img.TextSection || baked.HeapSection != img.HeapSection || baked.FileSize != img.FileSize {
		secFail = fmt.Sprintf("sections differ: text %+v vs %+v, heap %+v vs %+v, size %d vs %d",
			img.TextSection, baked.TextSection, img.HeapSection, baked.HeapSection,
			img.FileSize, baked.FileSize)
	}
	add("recipe-roundtrip-sections", secFail)

	cuFail := ""
	if len(baked.CULayout) != len(img.CULayout) {
		cuFail = fmtCount("CU counts differ: %d vs %d", len(img.CULayout), len(baked.CULayout))
	} else {
		off2 := make(map[string]int64, len(baked.CULayout))
		for _, cu := range baked.CULayout {
			off2[cu.Signature()] = baked.CUOffset[cu]
		}
		for _, cu := range img.CULayout {
			if got, ok := off2[cu.Signature()]; !ok || got != img.CUOffset[cu] {
				cuFail = fmt.Sprintf("CU %s moved: %d vs %d", cu.Signature(), img.CUOffset[cu], got)
				break
			}
		}
	}
	add("recipe-roundtrip-cu-offsets", cuFail)

	objFail := ""
	if len(baked.ObjLayout) != len(img.ObjLayout) {
		objFail = fmtCount("object counts differ: %d vs %d", len(img.ObjLayout), len(baked.ObjLayout))
	} else {
		for i, o := range img.ObjLayout {
			b := baked.ObjLayout[i]
			if b.Offset != o.Offset || b.TypeName() != o.TypeName() {
				objFail = fmt.Sprintf("object %d differs: %s@%d vs %s@%d",
					i, o.TypeName(), o.Offset, b.TypeName(), b.Offset)
				break
			}
		}
	}
	add("recipe-roundtrip-object-offsets", objFail)
	return cs
}
