package vm

import (
	"strings"
	"testing"

	"nimage/internal/heap"
	"nimage/internal/ir"
)

// buildFib constructs: class F { static fib(n) = n<2 ? n : fib(n-1)+fib(n-2) }.
func buildFib(t *testing.T) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("fib")
	b.Class(ir.StringClass)
	c := b.Class("F")
	fb := c.StaticMethod("fib", 1, ir.Int())
	e := fb.Entry()
	two := e.ConstInt(2)
	cond := e.Cmp(ir.Lt, fb.Param(0), two)
	base := fb.NewBlock()
	rec := fb.NewBlock()
	e.If(cond, base, rec)
	base.Ret(fb.Param(0))
	one := rec.ConstInt(1)
	n1 := rec.Arith(ir.Sub, fb.Param(0), one)
	t2 := rec.ConstInt(2)
	n2 := rec.Arith(ir.Sub, fb.Param(0), t2)
	a := rec.Call("F", "fib", n1)
	bb := rec.Call("F", "fib", n2)
	rec.Ret(rec.Arith(ir.Add, a, bb))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFib(t *testing.T) {
	p := buildFib(t)
	m := New(p)
	ten := heap.IntVal(10)
	got, err := m.RunMethod(p.Class("F").DeclaredMethod("fib"), ten)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 55 {
		t.Fatalf("fib(10) = %d, want 55", got.Int())
	}
	if m.Steps == 0 || m.Cycles <= m.Steps {
		t.Errorf("cost accounting: steps=%d cycles=%d", m.Steps, m.Cycles)
	}
}

func TestLoopAndArrays(t *testing.T) {
	// sieve-of-eratosthenes-ish: count multiples written into an array.
	b := ir.NewBuilder("arr")
	b.Class(ir.StringClass)
	c := b.Class("A")
	mb := c.StaticMethod("run", 1, ir.Int())
	e := mb.Entry()
	n := mb.Param(0)
	arr := e.NewArray(ir.Int(), n)
	zero := e.ConstInt(0)
	exit := e.For(zero, n, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		v := body.Arith(ir.Mul, i, i)
		body.ASet(arr, i, v)
		return body
	})
	acc := exit.ConstInt(0)
	exit2 := exit.For(zero, n, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		v := body.AGet(arr, i)
		body.ArithTo(acc, ir.Add, acc, v)
		return body
	})
	exit2.Ret(acc)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	got, err := m.RunMethod(p.Class("A").DeclaredMethod("run"), heap.IntVal(5))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 0+1+4+9+16 {
		t.Fatalf("sum of squares = %d", got.Int())
	}
}

func TestVirtualDispatch(t *testing.T) {
	b := ir.NewBuilder("virt")
	b.Class(ir.StringClass)
	base := b.Class("Animal")
	bm := base.Method("noise", 0, ir.Int())
	be := bm.Entry()
	be.Ret(be.ConstInt(1))
	dog := b.Class("Dog").Extends("Animal")
	dm := dog.Method("noise", 0, ir.Int())
	de := dm.Entry()
	de.Ret(de.ConstInt(2))
	b.Class("Cat").Extends("Animal") // inherits noise

	main := b.Class("Main")
	mm := main.StaticMethod("main", 0, ir.Int())
	e := mm.Entry()
	d := e.New("Dog")
	ct := e.New("Cat")
	vd := e.CallVirt("Animal", "noise", d)
	vc := e.CallVirt("Animal", "noise", ct)
	ten := e.ConstInt(10)
	s := e.Arith(ir.Mul, vd, ten)
	e.Ret(e.Arith(ir.Add, s, vc))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	got, err := m.RunMethod(p.Class("Main").DeclaredMethod("main"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 21 {
		t.Fatalf("dispatch result = %d, want 21", got.Int())
	}
}

func TestFieldsAndStatics(t *testing.T) {
	b := ir.NewBuilder("fs")
	b.Class(ir.StringClass)
	c := b.Class("Counter").Field("n", ir.Int())
	c.Static("last", ir.Ref("Counter"))
	mb := c.StaticMethod("bump", 0, ir.Int())
	e := mb.Entry()
	o := e.New("Counter")
	k := e.ConstInt(41)
	e.PutField(o, "Counter", "n", k)
	v := e.GetField(o, "Counter", "n")
	one := e.ConstInt(1)
	v2 := e.Arith(ir.Add, v, one)
	e.PutField(o, "Counter", "n", v2)
	e.PutStatic("Counter", "last", o)
	back := e.GetStatic("Counter", "last")
	e.Ret(e.GetField(back, "Counter", "n"))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	got, err := m.RunMethod(p.Class("Counter").DeclaredMethod("bump"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 42 {
		t.Fatalf("got %d", got.Int())
	}
}

func TestStringsAndIntrinsics(t *testing.T) {
	b := ir.NewBuilder("str")
	b.Class(ir.StringClass)
	c := b.Class("S")
	mb := c.StaticMethod("run", 0, ir.Int())
	e := mb.Entry()
	h := e.Str("hello ")
	w := e.Str("world")
	hw := e.Intrinsic(ir.IntrinsicConcat, h, w)
	e.Ret(e.Intrinsic(ir.IntrinsicStrLen, hw))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	got, err := m.RunMethod(p.Class("S").DeclaredMethod("run"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 11 {
		t.Fatalf("strlen = %d", got.Int())
	}
	// The two literals are interned.
	if n := len(m.Interns.All()); n != 2 {
		t.Errorf("interned = %d", n)
	}
}

func TestTrapsCarryContext(t *testing.T) {
	cases := []struct {
		name string
		make func(e *ir.BlockBuilder, mb *ir.MethodBuilder)
		want string
	}{
		{
			name: "div by zero",
			make: func(e *ir.BlockBuilder, mb *ir.MethodBuilder) {
				a := e.ConstInt(1)
				z := e.ConstInt(0)
				e.Ret(e.Arith(ir.Div, a, z))
			},
			want: "division by zero",
		},
		{
			name: "null field",
			make: func(e *ir.BlockBuilder, mb *ir.MethodBuilder) {
				n := e.Null()
				e.Ret(e.GetField(n, "T", "x"))
			},
			want: "null field load",
		},
		{
			name: "index out of bounds",
			make: func(e *ir.BlockBuilder, mb *ir.MethodBuilder) {
				two := e.ConstInt(2)
				arr := e.NewArray(ir.Int(), two)
				five := e.ConstInt(5)
				e.Ret(e.AGet(arr, five))
			},
			want: "out of bounds",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := ir.NewBuilder("trap")
			b.Class(ir.StringClass)
			c := b.Class("T").Field("x", ir.Int())
			mb := c.StaticMethod("run", 0, ir.Int())
			tc.make(mb.Entry(), mb)
			p, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			m := New(p)
			_, err = m.RunMethod(p.Class("T").DeclaredMethod("run"))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
			if !strings.Contains(err.Error(), "T.run(0)") {
				t.Errorf("trap lacks method context: %v", err)
			}
		})
	}
}

// buildThreaded: main spawns two workers that each accumulate locally and
// publish into their own slot of a shared static array, then responds.
func buildThreaded(t *testing.T) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("mt")
	b.Class(ir.StringClass)
	c := b.Class("W")
	c.Static("out", ir.Array(ir.Int()))
	setup := c.StaticMethod("setup", 0, ir.Void())
	se := setup.Entry()
	two := se.ConstInt(2)
	se.PutStatic("W", "out", se.NewArray(ir.Int(), two))
	se.RetVoid()

	w := c.StaticMethod("work", 2, ir.Void()) // (slot, weight)
	we := w.Entry()
	acc := we.ConstInt(0)
	zero := we.ConstInt(0)
	hi := we.ConstInt(2000)
	exit := we.For(zero, hi, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		body.ArithTo(acc, ir.Add, acc, w.Param(1))
		return body
	})
	arr := exit.GetStatic("W", "out")
	exit.ASet(arr, w.Param(0), acc)
	exit.RetVoid()

	main := b.Class("Main")
	mm := main.StaticMethod("main", 0, ir.Void())
	e := mm.Entry()
	e.CallVoid("W", "setup")
	s0 := e.ConstInt(0)
	s1 := e.ConstInt(1)
	one := e.ConstInt(1)
	two2 := e.ConstInt(2)
	e.Spawn("W.work", s0, one)
	e.Spawn("W.work", s1, two2)
	e.IntrinsicVoid(ir.IntrinsicRespond)
	e.RetVoid()
	b.SetEntry("Main", "main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func workerOutputs(t *testing.T, m *Machine, p *ir.Program) (int64, int64) {
	t.Helper()
	arr := m.Statics.Get(p.Class("W").LookupStatic("out")).Ref
	if arr == nil {
		t.Fatal("out array not published")
	}
	return arr.GetElem(0).Int(), arr.GetElem(1).Int()
}

func TestThreadsRunToCompletion(t *testing.T) {
	p := buildThreaded(t)
	m := New(p)
	if err := m.RunProgram(); err != nil {
		t.Fatal(err)
	}
	a, b2 := workerOutputs(t, m, p)
	if a != 2000 || b2 != 4000 {
		t.Fatalf("worker outputs = %d, %d", a, b2)
	}
	if !m.Responded {
		t.Error("respond not recorded")
	}
}

func TestStopOnRespondKillsWorkers(t *testing.T) {
	p := buildThreaded(t)
	m := New(p)
	m.StopOnRespond = true
	if err := m.RunProgram(); err != nil {
		t.Fatal(err)
	}
	a, b2 := workerOutputs(t, m, p)
	if a != 0 || b2 != 0 {
		t.Fatalf("workers finished despite SIGKILL: %d, %d", a, b2)
	}
	if m.CyclesAtRespond == 0 || m.CyclesAtRespond > m.Cycles {
		t.Errorf("CyclesAtRespond = %d (total %d)", m.CyclesAtRespond, m.Cycles)
	}
}

func TestDeterministicScheduling(t *testing.T) {
	run := func() (int64, int64) {
		p := buildThreaded(t)
		m := New(p)
		if err := m.RunProgram(); err != nil {
			t.Fatal(err)
		}
		return m.Steps, m.Cycles
	}
	s1, c1 := run()
	s2, c2 := run()
	if s1 != s2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", s1, c1, s2, c2)
	}
}

func TestHooksFireWithInlining(t *testing.T) {
	p := buildFib(t)
	m := New(p)
	var cuEntries, methodEntries, blocks int
	m.Hooks = Hooks{
		// Pretend every callee is inlined into the entry CU.
		InlineOf:      func(ctx, callee *ir.Method) bool { return true },
		OnEnterCU:     func(tid int, root *ir.Method) { cuEntries++ },
		OnMethodEnter: func(tid int, mm *ir.Method) { methodEntries++ },
		OnBlock:       func(tid int, mm *ir.Method, b int) { blocks++ },
	}
	if _, err := m.RunMethod(p.Class("F").DeclaredMethod("fib"), heap.IntVal(6)); err != nil {
		t.Fatal(err)
	}
	if cuEntries != 1 {
		t.Errorf("cu entries = %d, want 1 (all inlined)", cuEntries)
	}
	if methodEntries < 10 {
		t.Errorf("method entries = %d, want many", methodEntries)
	}
	if blocks <= methodEntries {
		t.Errorf("blocks = %d, methods = %d", blocks, methodEntries)
	}
}

func TestAccessHookFires(t *testing.T) {
	b := ir.NewBuilder("acc")
	b.Class(ir.StringClass)
	c := b.Class("A").Field("x", ir.Int())
	mb := c.StaticMethod("run", 0, ir.Int())
	e := mb.Entry()
	o := e.New("A")
	k := e.ConstInt(3)
	e.PutField(o, "A", "x", k)
	e.Ret(e.GetField(o, "A", "x"))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	var accesses int
	m.Hooks.OnAccess = func(tid int, o *heap.Object, instr bool) { accesses++ }
	if _, err := m.RunMethod(p.Class("A").DeclaredMethod("run")); err != nil {
		t.Fatal(err)
	}
	if accesses != 2 {
		t.Errorf("accesses = %d, want 2", accesses)
	}
}

func TestBuildSaltDiffersAcrossBuilds(t *testing.T) {
	b := ir.NewBuilder("salt")
	b.Class(ir.StringClass)
	c := b.Class("A")
	mb := c.StaticMethod("run", 0, ir.Int())
	e := mb.Entry()
	e.Ret(e.Intrinsic(ir.IntrinsicBuildSalt))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	run := func(salt uint64) int64 {
		m := New(p)
		m.BuildSalt = salt
		v, err := m.RunMethod(p.Class("A").DeclaredMethod("run"))
		if err != nil {
			t.Fatal(err)
		}
		return v.Int()
	}
	if run(1) == run(2) {
		t.Error("different salts produced equal values")
	}
	if run(7) != run(7) {
		t.Error("same salt not deterministic")
	}
}

func TestJournalRollback(t *testing.T) {
	b := ir.NewBuilder("j")
	b.Class(ir.StringClass)
	c := b.Class("A").Field("x", ir.Int())
	c.Static("s", ir.Int())
	mb := c.StaticMethod("mutate", 1, ir.Void())
	e := mb.Entry()
	k := e.ConstInt(99)
	e.PutField(mb.Param(0), "A", "x", k)
	e.PutStatic("A", "s", k)
	e.Intrinsic(ir.IntrinsicIntern, e.Str("runtime-literal"))
	e.RetVoid()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)

	// Pre-existing "snapshot" object and static value.
	o := heap.NewObject(p.Class("A"))
	o.InSnapshot = true
	xf := p.Class("A").LookupField("x")
	o.SetField(xf, heap.IntVal(7))
	sf := p.Class("A").LookupStatic("s")
	m.Statics.Set(sf, heap.IntVal(5))
	baseInterns := len(m.Interns.All())

	m.EnableJournal()
	if _, err := m.RunMethod(p.Class("A").DeclaredMethod("mutate"), heap.RefVal(o)); err != nil {
		t.Fatal(err)
	}
	if o.GetField(xf).Int() != 99 || m.Statics.Get(sf).Int() != 99 {
		t.Fatal("mutation did not happen")
	}
	m.Rollback()
	if got := o.GetField(xf).Int(); got != 7 {
		t.Errorf("field not rolled back: %d", got)
	}
	if got := m.Statics.Get(sf).Int(); got != 5 {
		t.Errorf("static not rolled back: %d", got)
	}
	if got := len(m.Interns.All()); got != baseInterns {
		t.Errorf("interns not rolled back: %d vs %d", got, baseInterns)
	}
}

func TestStackOverflowTrapped(t *testing.T) {
	b := ir.NewBuilder("so")
	b.Class(ir.StringClass)
	c := b.Class("R")
	mb := c.StaticMethod("loop", 0, ir.Void())
	e := mb.Entry()
	e.CallVoid("R", "loop")
	e.RetVoid()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	_, err = m.RunMethod(p.Class("R").DeclaredMethod("loop"))
	if err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Fatalf("err = %v", err)
	}
}

func TestMaxStepsGuards(t *testing.T) {
	b := ir.NewBuilder("inf")
	b.Class(ir.StringClass)
	c := b.Class("I")
	mb := c.StaticMethod("spin", 0, ir.Void())
	e := mb.Entry()
	e.Goto(e2(mb, e))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	m.MaxSteps = 10_000
	_, err = m.RunMethod(p.Class("I").DeclaredMethod("spin"))
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v", err)
	}
}

// e2 builds a block that jumps back to from, forming an infinite loop.
func e2(mb *ir.MethodBuilder, from *ir.BlockBuilder) *ir.BlockBuilder {
	loop := mb.NewBlock()
	loop.Goto(loop)
	return loop
}

func TestFloatOps(t *testing.T) {
	b := ir.NewBuilder("flt")
	b.Class(ir.StringClass)
	c := b.Class("M")
	mb := c.StaticMethod("hyp", 2, ir.Float())
	e := mb.Entry()
	a2 := e.FArith(ir.Mul, mb.Param(0), mb.Param(0))
	b2 := e.FArith(ir.Mul, mb.Param(1), mb.Param(1))
	s := e.FArith(ir.Add, a2, b2)
	e.Ret(e.Intrinsic(ir.IntrinsicSqrt, s))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	got, err := m.RunMethod(p.Class("M").DeclaredMethod("hyp"), heap.FloatVal(3), heap.FloatVal(4))
	if err != nil {
		t.Fatal(err)
	}
	if got.Float() != 5 {
		t.Fatalf("hyp(3,4) = %v", got.Float())
	}
}
