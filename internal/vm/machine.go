// Package vm interprets IR programs deterministically.
//
// The interpreter serves two roles in the toolchain, mirroring the paper:
// at image build time it executes the class initializers of reachable
// classes to populate the initial heap (Sec. 2), and at "runtime" it
// executes the binary while the hooks report the events the instrumented
// image would trace — compilation-unit entries, method entries, executed
// blocks, and heap-object accesses (Sec. 6.1) — and the events the loaded
// image turns into page touches.
//
// Multi-threaded workloads (the microservice benchmarks) run under a
// deterministic round-robin scheduler, so measurements are reproducible.
package vm

import (
	"fmt"

	"nimage/internal/heap"
	"nimage/internal/ir"
	"nimage/internal/obs"
)

// Hooks receive execution events. Any hook may be nil.
type Hooks struct {
	// InlineOf reports whether a call to callee from code compiled into the
	// CU rooted at ctx executes inlined (inside ctx's CU) rather than
	// entering callee's own CU. When nil, no call is treated as inlined.
	InlineOf func(ctx, callee *ir.Method) bool
	// OnEnterCU fires when control enters the compilation unit rooted at
	// root via a non-inlined call (including thread entry points). tid is
	// the executing thread.
	OnEnterCU func(tid int, root *ir.Method)
	// OnMethodEnter fires on every method invocation, inlined or not.
	OnMethodEnter func(tid int, m *ir.Method)
	// OnMethodExit fires when a method returns.
	OnMethodExit func(tid int, m *ir.Method)
	// OnBlock fires when a basic block of m begins executing.
	OnBlock func(tid int, m *ir.Method, block int)
	// OnAccess fires when object o is touched. instr is true for explicit
	// field/array access instructions — the events the heap-ordering
	// instrumentation records (Sec. 6.1) — and false for implicit touches
	// (intrinsics reading string contents), which fault pages but carry no
	// statically countable probe.
	OnAccess func(tid int, o *heap.Object, instr bool)
	// OnNew fires when an instance of c is allocated. The loaded image uses
	// it to touch the class's metadata (hub) object in the heap snapshot,
	// the way compiled allocation code reads the hub word.
	OnNew func(tid int, c *ir.Class)
	// OnRespond fires when the workload executes the respond intrinsic
	// (first external response of a microservice, Sec. 7.1).
	OnRespond func()
	// OnPrint fires when the workload executes the print intrinsic, with
	// the printed value. The equivalence verifier records these events as
	// the program's observable output.
	OnPrint func(tid int, v heap.Value)
}

// Simulated cost model (cycle units; see CycleNanos).
const (
	costInstr     = 1
	costCall      = 7
	costAlloc     = 12
	costAccess    = 2
	costIntrinsic = 5
)

// CycleNanos converts cycle units to nanoseconds of simulated CPU time
// (roughly a 2.5 GHz in-order machine).
const CycleNanos = 0.4

// Machine executes one program. Zero-value fields get defaults in New.
type Machine struct {
	Prog    *ir.Program
	Statics *heap.Statics
	Interns *heap.Interns
	Hooks   Hooks

	// BuildSalt seeds the buildsalt intrinsic; every image build uses a
	// different salt, modelling build-dependent values captured by class
	// initializers (one of the heap-divergence sources of Sec. 2).
	BuildSalt uint64
	// IntArgs are the program arguments read by the arg intrinsic.
	IntArgs []int64
	// MaxSteps aborts runaway executions.
	MaxSteps int64
	// Quantum is the scheduler time slice in instructions.
	Quantum int
	// StopOnRespond stops all threads at the first respond intrinsic (the
	// harness then "SIGKILLs" the workload, Sec. 7.1).
	StopOnRespond bool
	// AutoClinit triggers class initializers on first static access,
	// allocation, or static call (JVM semantics). The image builder
	// enables it during build-time initialization, so the seeded shuffle
	// of the explicit initialization order can never run a dependent
	// initializer before its dependencies.
	AutoClinit bool
	// Obs, when non-nil, receives the executed instruction mix and the
	// sim-time breakdown when a scheduling round finishes. The interpreter
	// loop pays a single local-array increment per instruction when a
	// registry is attached and nothing at all otherwise.
	Obs *obs.Registry

	// Steps counts executed instructions; Cycles accumulates the cost
	// model. CyclesAtRespond snapshots Cycles at the first response.
	Steps           int64
	Cycles          int64
	Responded       bool
	CyclesAtRespond int64

	stringClass *ir.Class
	clinitDone  map[*ir.Class]bool
	saltCtr     uint64
	stop        bool
	threads     []*thread
	nextTID     int
	journal     *journal
	lastResult  heap.Value

	// mix accumulates per-opcode execution counts between finish() flushes;
	// mixOn caches Obs != nil for the duration of one schedule() run.
	mix   [ir.NumOps]int64
	mixOn bool
}

// New creates a machine over a resolved program with fresh statics and
// intern table.
func New(prog *ir.Program) *Machine {
	m := &Machine{
		Prog:    prog,
		Statics: heap.NewStatics(),
	}
	m.stringClass = prog.Class(ir.StringClass)
	if m.stringClass != nil {
		m.Interns = heap.NewInterns(m.stringClass)
	}
	m.MaxSteps = 200_000_000
	m.Quantum = 400
	m.clinitDone = make(map[*ir.Class]bool)
	return m
}

// ensureInit pushes the pending class initializers of c (superclasses
// first) onto thread t and reports whether any were pushed. The caller
// must re-execute the triggering instruction afterwards.
func (m *Machine) ensureInit(t *thread, c *ir.Class) bool {
	var pending []*ir.Method
	for k := c; k != nil; k = k.Super {
		if m.clinitDone[k] {
			break
		}
		m.clinitDone[k] = true
		if cl := k.Clinit(); cl != nil {
			pending = append(pending, cl)
		}
	}
	if len(pending) == 0 {
		return false
	}
	// Push subclass initializers first so superclass initializers end up
	// on top of the stack and run first.
	for _, cl := range pending {
		nf := &frame{
			m:      cl,
			ctx:    cl,
			regs:   make([]heap.Value, cl.NumRegs),
			retReg: int(ir.NoReg),
		}
		for i := range nf.regs {
			nf.regs[i] = heap.Null()
		}
		t.frames = append(t.frames, nf)
		if m.Hooks.OnMethodEnter != nil {
			m.Hooks.OnMethodEnter(t.id, cl)
		}
		if m.Hooks.OnBlock != nil {
			m.Hooks.OnBlock(t.id, cl, 0)
		}
	}
	return true
}

// RunClassInit runs the class initializer of c (and transitively of its
// superclasses) unless it already ran; used by the image builder for the
// explicit build-time initialization sequence.
func (m *Machine) RunClassInit(c *ir.Class) error {
	t := &thread{id: -1}
	if !m.ensureInit(t, c) {
		return nil
	}
	m.threads = append(m.threads, t)
	return m.schedule()
}

// SimTimeNanos returns the simulated CPU time in nanoseconds.
func (m *Machine) SimTimeNanos() float64 { return float64(m.Cycles) * CycleNanos }

// RespondTimeNanos returns the simulated CPU time at the first response.
func (m *Machine) RespondTimeNanos() float64 { return float64(m.CyclesAtRespond) * CycleNanos }

type frame struct {
	m      *ir.Method
	ctx    *ir.Method // root of the CU whose compiled code is executing
	regs   []heap.Value
	block  int
	ip     int
	retReg int // destination register in the caller (NoReg if discarded)
}

type thread struct {
	id     int
	frames []*frame
	done   bool
}

// trap is an execution error with location context.
type trap struct {
	msg string
	m   *ir.Method
	blk int
	ip  int
}

func (t *trap) Error() string {
	return fmt.Sprintf("vm: %s at %s block %d ip %d", t.msg, t.m.Signature(), t.blk, t.ip)
}

func (m *Machine) trapf(f *frame, format string, args ...any) error {
	return &trap{msg: fmt.Sprintf(format, args...), m: f.m, blk: f.block, ip: f.ip}
}

// RunProgram executes the program entry under the deterministic scheduler
// until every thread finishes, a respond event stops the run (if
// StopOnRespond), or the step budget is exhausted.
func (m *Machine) RunProgram(args ...int64) error {
	entry := m.Prog.Entry()
	if entry == nil {
		return fmt.Errorf("vm: program %s has no entry point", m.Prog.Name)
	}
	m.IntArgs = args
	m.spawnThread(entry, nil)
	return m.schedule()
}

// RunMethod executes a single static method to completion on a fresh main
// thread (used for build-time class initializers) and returns its result.
func (m *Machine) RunMethod(target *ir.Method, args ...heap.Value) (heap.Value, error) {
	if !target.Static {
		return heap.Null(), fmt.Errorf("vm: RunMethod target %s is not static", target.Signature())
	}
	t := m.spawnThread(target, args)
	if err := m.schedule(); err != nil {
		return heap.Null(), err
	}
	_ = t
	return m.lastResult, nil
}

func (m *Machine) spawnThread(entry *ir.Method, args []heap.Value) *thread {
	f := &frame{
		m:      entry,
		ctx:    entry,
		regs:   make([]heap.Value, entry.NumRegs),
		retReg: int(ir.NoReg),
	}
	for i := range f.regs {
		f.regs[i] = heap.Null()
	}
	copy(f.regs, args)
	t := &thread{id: m.nextTID, frames: []*frame{f}}
	m.nextTID++
	m.threads = append(m.threads, t)
	if m.Hooks.OnEnterCU != nil {
		m.Hooks.OnEnterCU(t.id, entry)
	}
	if m.Hooks.OnMethodEnter != nil {
		m.Hooks.OnMethodEnter(t.id, entry)
	}
	if m.Hooks.OnBlock != nil {
		m.Hooks.OnBlock(t.id, entry, 0)
	}
	return t
}

// schedule runs all threads round-robin until completion or stop.
func (m *Machine) schedule() error {
	m.mixOn = m.Obs.Enabled()
	for {
		live := 0
		progressed := false
		for _, t := range m.threads {
			if t.done {
				continue
			}
			live++
			if err := m.runQuantum(t); err != nil {
				return err
			}
			progressed = true
			if m.stop {
				m.finish()
				return nil
			}
		}
		if live == 0 {
			m.finish()
			return nil
		}
		if !progressed {
			return fmt.Errorf("vm: scheduler made no progress with %d live threads", live)
		}
		if m.Steps > m.MaxSteps {
			return fmt.Errorf("vm: step budget %d exhausted (livelock?)", m.MaxSteps)
		}
	}
}

func (m *Machine) finish() {
	// Drop finished thread bookkeeping; the machine can be reused for a
	// further RunMethod (build-time clinit sequences do this).
	m.threads = m.threads[:0]
	m.stop = false
	if m.mixOn {
		m.flushObs()
	}
}

// flushObs publishes the instruction mix gathered since the last flush and
// the cumulative sim-time breakdown. Mix counters are deltas (Add) so that
// repeated schedule() rounds on a reused machine accumulate; the totals are
// gauges reflecting the machine's lifetime state.
func (m *Machine) flushObs() {
	for op := 0; op < ir.NumOps; op++ {
		if m.mix[op] != 0 {
			m.Obs.Counter("vm.instr." + ir.Op(op).String()).Add(m.mix[op])
			m.mix[op] = 0
		}
	}
	m.Obs.Gauge("vm.steps").Set(float64(m.Steps))
	m.Obs.Gauge("vm.cycles").Set(float64(m.Cycles))
	m.Obs.Gauge("vm.cpu_nanos").Set(m.SimTimeNanos())
	m.Obs.Gauge("vm.threads").Set(float64(m.nextTID))
}

// runQuantum executes up to Quantum instructions on thread t.
func (m *Machine) runQuantum(t *thread) error {
	for n := 0; n < m.Quantum; n++ {
		if len(t.frames) == 0 {
			t.done = true
			return nil
		}
		if m.stop {
			return nil
		}
		yielded, err := m.step(t)
		if err != nil {
			return err
		}
		m.Steps++
		if m.Steps > m.MaxSteps {
			return fmt.Errorf("vm: step budget %d exhausted in %s", m.MaxSteps, m.Prog.Name)
		}
		if yielded {
			return nil
		}
	}
	return nil
}
