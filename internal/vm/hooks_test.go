package vm

import (
	"testing"

	"nimage/internal/heap"
	"nimage/internal/ir"
)

func TestComposeHooksBothFire(t *testing.T) {
	var log []string
	mk := func(tag string) Hooks {
		return Hooks{
			OnEnterCU:     func(tid int, m *ir.Method) { log = append(log, tag+":cu") },
			OnMethodEnter: func(tid int, m *ir.Method) { log = append(log, tag+":enter") },
			OnMethodExit:  func(tid int, m *ir.Method) { log = append(log, tag+":exit") },
			OnBlock:       func(tid int, m *ir.Method, b int) { log = append(log, tag+":block") },
			OnAccess:      func(tid int, o *heap.Object, instr bool) { log = append(log, tag+":access") },
			OnNew:         func(tid int, c *ir.Class) { log = append(log, tag+":new") },
			OnRespond:     func() { log = append(log, tag+":respond") },
		}
	}
	h := ComposeHooks(mk("a"), mk("b"))
	h.OnEnterCU(0, nil)
	h.OnMethodEnter(0, nil)
	h.OnMethodExit(0, nil)
	h.OnBlock(0, nil, 0)
	h.OnAccess(0, nil, true)
	h.OnNew(0, nil)
	h.OnRespond()
	want := []string{
		"a:cu", "b:cu", "a:enter", "b:enter", "a:exit", "b:exit",
		"a:block", "b:block", "a:access", "b:access", "a:new", "b:new",
		"a:respond", "b:respond",
	}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log[%d] = %s, want %s", i, log[i], want[i])
		}
	}
}

func TestComposeHooksNilSides(t *testing.T) {
	fired := 0
	a := Hooks{OnMethodEnter: func(tid int, m *ir.Method) { fired++ }}
	// nil on either side must pass the other through.
	l := ComposeHooks(a, Hooks{})
	r := ComposeHooks(Hooks{}, a)
	l.OnMethodEnter(0, nil)
	r.OnMethodEnter(0, nil)
	if fired != 2 {
		t.Errorf("fired = %d", fired)
	}
	if l.OnEnterCU != nil || l.OnRespond != nil {
		t.Error("absent hooks must stay nil")
	}
}

func TestComposeHooksInlineOracle(t *testing.T) {
	yes := func(ctx, callee *ir.Method) bool { return true }
	no := func(ctx, callee *ir.Method) bool { return false }
	if h := ComposeHooks(Hooks{InlineOf: yes}, Hooks{InlineOf: no}); !h.InlineOf(nil, nil) {
		t.Error("first oracle must win")
	}
	if h := ComposeHooks(Hooks{}, Hooks{InlineOf: yes}); !h.InlineOf(nil, nil) {
		t.Error("second oracle must be used when first absent")
	}
}

func TestRunMethodRejectsInstanceMethod(t *testing.T) {
	b := ir.NewBuilder("inst")
	b.Class(ir.StringClass)
	c := b.Class("C")
	m := c.Method("f", 0, ir.Void())
	m.Entry().RetVoid()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mach := New(p)
	if _, err := mach.RunMethod(p.Class("C").DeclaredMethod("f")); err == nil {
		t.Fatal("instance method accepted by RunMethod")
	}
}

func TestRunProgramWithoutEntry(t *testing.T) {
	b := ir.NewBuilder("noentry")
	b.Class(ir.StringClass)
	c := b.Class("C")
	m := c.StaticMethod("f", 0, ir.Void())
	m.Entry().RetVoid()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mach := New(p)
	if err := mach.RunProgram(); err == nil {
		t.Fatal("program without entry ran")
	}
}

func TestRollbackWithoutJournalIsNoop(t *testing.T) {
	b := ir.NewBuilder("nj")
	b.Class(ir.StringClass)
	c := b.Class("C")
	m := c.StaticMethod("f", 0, ir.Void())
	m.Entry().RetVoid()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mach := New(p)
	mach.Rollback() // must not panic
}
