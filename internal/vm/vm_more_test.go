package vm

import (
	"strings"
	"testing"

	"nimage/internal/heap"
	"nimage/internal/ir"
)

// runExpr builds a single static method from fill and runs it.
func runExpr(t *testing.T, returns ir.TypeRef, fill func(mb *ir.MethodBuilder, e *ir.BlockBuilder)) (heap.Value, error) {
	t.Helper()
	b := ir.NewBuilder("expr")
	b.Class(ir.StringClass)
	b.Class("Aux").Field("x", ir.Int())
	c := b.Class("E")
	mb := c.StaticMethod("run", 0, returns)
	fill(mb, mb.Entry())
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	return m.RunMethod(p.Class("E").DeclaredMethod("run"))
}

func TestIntrinsicStringOps(t *testing.T) {
	v, err := runExpr(t, ir.Int(), func(mb *ir.MethodBuilder, e *ir.BlockBuilder) {
		s := e.Str("native")
		i := e.Str("image")
		both := e.Intrinsic(ir.IntrinsicConcat, s, i)
		// strchar('nativeimage'[6]) == 'i'
		six := e.ConstInt(6)
		ch := e.Intrinsic(ir.IntrinsicStrChar, both, six)
		same := e.Str("nativeimage")
		eq := e.Intrinsic(ir.IntrinsicStrEq, both, same)
		hundred := e.ConstInt(100)
		score := e.Arith(ir.Mul, eq, hundred)
		e.Ret(e.Arith(ir.Add, ch, score))
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != int64('i')+100 {
		t.Errorf("got %d", v.Int())
	}
}

func TestIntrinsicItoaAndHash(t *testing.T) {
	v, err := runExpr(t, ir.Int(), func(mb *ir.MethodBuilder, e *ir.BlockBuilder) {
		n := e.ConstInt(-123)
		s := e.Intrinsic(ir.IntrinsicItoa, n)
		want := e.Str("-123")
		eq := e.Intrinsic(ir.IntrinsicStrEq, s, want)
		h1 := e.Intrinsic(ir.IntrinsicStrHash, s)
		h2 := e.Intrinsic(ir.IntrinsicStrHash, want)
		same := e.Cmp(ir.Eq, h1, h2)
		e.Ret(e.Arith(ir.And, eq, same))
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 1 {
		t.Error("itoa/strhash mismatch")
	}
}

func TestStrCharOutOfRangeTraps(t *testing.T) {
	_, err := runExpr(t, ir.Int(), func(mb *ir.MethodBuilder, e *ir.BlockBuilder) {
		s := e.Str("ab")
		five := e.ConstInt(5)
		e.Ret(e.Intrinsic(ir.IntrinsicStrChar, s, five))
	})
	if err == nil || !strings.Contains(err.Error(), "strchar index") {
		t.Fatalf("err = %v", err)
	}
}

func TestIntrinsicOnNonStringTraps(t *testing.T) {
	_, err := runExpr(t, ir.Int(), func(mb *ir.MethodBuilder, e *ir.BlockBuilder) {
		o := e.New("Aux")
		e.Ret(e.Intrinsic(ir.IntrinsicStrLen, o))
	})
	if err == nil || !strings.Contains(err.Error(), "not a string") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownIntrinsicTraps(t *testing.T) {
	_, err := runExpr(t, ir.Int(), func(mb *ir.MethodBuilder, e *ir.BlockBuilder) {
		e.Ret(e.Intrinsic("frobnicate"))
	})
	if err == nil || !strings.Contains(err.Error(), "unknown intrinsic") {
		t.Fatalf("err = %v", err)
	}
}

func TestPrintNullIsHarmless(t *testing.T) {
	_, err := runExpr(t, ir.Void(), func(mb *ir.MethodBuilder, e *ir.BlockBuilder) {
		n := e.Null()
		e.IntrinsicVoid(ir.IntrinsicPrint, n)
		e.RetVoid()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConversionsAndFloatCompare(t *testing.T) {
	v, err := runExpr(t, ir.Int(), func(mb *ir.MethodBuilder, e *ir.BlockBuilder) {
		f := e.ConstFloat(2.9)
		i := e.FloatToInt(f) // truncates to 2
		fi := e.IntToFloat(i)
		lt := e.Cmp(ir.Lt, fi, f) // 2.0 < 2.9
		ten := e.ConstInt(10)
		s := e.Arith(ir.Mul, lt, ten)
		e.Ret(e.Arith(ir.Add, s, i))
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 12 {
		t.Errorf("got %d", v.Int())
	}
}

func TestFloatRemAndMixedCompare(t *testing.T) {
	v, err := runExpr(t, ir.Float(), func(mb *ir.MethodBuilder, e *ir.BlockBuilder) {
		a := e.ConstFloat(7.5)
		b := e.ConstFloat(2.0)
		e.Ret(e.FArith(ir.Rem, a, b))
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Float() != 1.5 {
		t.Errorf("7.5 mod 2 = %v", v.Float())
	}
}

func TestShiftOperators(t *testing.T) {
	v, err := runExpr(t, ir.Int(), func(mb *ir.MethodBuilder, e *ir.BlockBuilder) {
		one := e.ConstInt(1)
		ten := e.ConstInt(10)
		big := e.Arith(ir.Shl, one, ten) // 1024
		two := e.ConstInt(2)
		e.Ret(e.Arith(ir.Shr, big, two)) // 256
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 256 {
		t.Errorf("got %d", v.Int())
	}
}

func TestRefEqualityCompare(t *testing.T) {
	v, err := runExpr(t, ir.Int(), func(mb *ir.MethodBuilder, e *ir.BlockBuilder) {
		a := e.New("Aux")
		b2 := e.New("Aux")
		same := e.Cmp(ir.Eq, a, a)
		diff := e.Cmp(ir.Ne, a, b2)
		e.Ret(e.Arith(ir.And, same, diff))
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 1 {
		t.Error("reference comparison broken")
	}
}

func TestSpawnBadTargetTraps(t *testing.T) {
	b := ir.NewBuilder("badspawn")
	b.Class(ir.StringClass)
	c := b.Class("S")
	// The spawn target is resolved at runtime; reference a real method for
	// reachability but spawn a bogus name.
	w := c.StaticMethod("work", 0, ir.Void())
	w.Entry().RetVoid()
	mb := c.StaticMethod("main", 0, ir.Void())
	e := mb.Entry()
	e.Spawn("S.missing")
	e.RetVoid()
	b.SetEntry("S", "main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	if err := m.RunProgram(); err == nil || !strings.Contains(err.Error(), "spawn target") {
		t.Fatalf("err = %v", err)
	}
}

func TestAutoClinitRunsSuperFirst(t *testing.T) {
	b := ir.NewBuilder("order")
	b.Class(ir.StringClass)
	log := b.Class("Log")
	log.Static("seq", ir.Int())

	base := b.Class("Base")
	base.Static("b", ir.Int())
	bc := base.Clinit()
	be := bc.Entry()
	cur := be.GetStatic("Log", "seq")
	ten := be.ConstInt(10)
	nv := be.Arith(ir.Mul, cur, ten)
	one := be.ConstInt(1)
	be.PutStatic("Log", "seq", be.Arith(ir.Add, nv, one))
	be.RetVoid()

	sub := b.Class("Sub").Extends("Base")
	sub.Static("s", ir.Int())
	sc := sub.Clinit()
	se := sc.Entry()
	cur2 := se.GetStatic("Log", "seq")
	ten2 := se.ConstInt(10)
	nv2 := se.Arith(ir.Mul, cur2, ten2)
	two := se.ConstInt(2)
	se.PutStatic("Log", "seq", se.Arith(ir.Add, nv2, two))
	se.RetVoid()

	main := b.Class("Main")
	mm := main.StaticMethod("main", 0, ir.Void())
	e := mm.Entry()
	e.New("Sub") // triggers Sub init, which must run Base's first
	e.RetVoid()
	b.SetEntry("Main", "main")

	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	m.AutoClinit = true
	if err := m.RunProgram(); err != nil {
		t.Fatal(err)
	}
	// Base appends 1, then Sub appends 2: sequence 12.
	if got := m.Statics.Get(p.Class("Log").LookupStatic("seq")).Int(); got != 12 {
		t.Errorf("init sequence = %d, want 12 (super first)", got)
	}
}

func TestAutoClinitRunsOnce(t *testing.T) {
	b := ir.NewBuilder("once")
	b.Class(ir.StringClass)
	c := b.Class("C")
	c.Static("n", ir.Int())
	cl := c.Clinit()
	ce := cl.Entry()
	cur := ce.GetStatic("C", "n")
	one := ce.ConstInt(1)
	ce.PutStatic("C", "n", ce.Arith(ir.Add, cur, one))
	ce.RetVoid()
	main := b.Class("Main")
	mm := main.StaticMethod("main", 0, ir.Void())
	e := mm.Entry()
	e.New("C")
	e.New("C")
	e.GetStatic("C", "n")
	e.RetVoid()
	b.SetEntry("Main", "main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	m.AutoClinit = true
	if err := m.RunProgram(); err != nil {
		t.Fatal(err)
	}
	if got := m.Statics.Get(p.Class("C").LookupStatic("n")).Int(); got != 1 {
		t.Errorf("clinit ran %d times", got)
	}
}

func TestVirtualCallOnArrayTraps(t *testing.T) {
	b := ir.NewBuilder("varr")
	b.Class(ir.StringClass)
	c := b.Class("V")
	vm0 := c.Method("m", 0, ir.Void())
	vm0.Entry().RetVoid()
	mb := c.StaticMethod("main", 0, ir.Void())
	e := mb.Entry()
	one := e.ConstInt(1)
	arr := e.NewArray(ir.Int(), one)
	e.CallVirtVoid("V", "m", arr)
	e.RetVoid()
	b.SetEntry("V", "main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	if err := m.RunProgram(); err == nil || !strings.Contains(err.Error(), "on array") {
		t.Fatalf("err = %v", err)
	}
}

func TestArgIntrinsic(t *testing.T) {
	b := ir.NewBuilder("args")
	b.Class(ir.StringClass)
	c := b.Class("A")
	mb := c.StaticMethod("main", 0, ir.Void())
	e := mb.Entry()
	one := e.ConstInt(1)
	v := e.Intrinsic(ir.IntrinsicArg, one)
	e.PutStatic("A", "got", v)
	e.RetVoid()
	c.Static("got", ir.Int())
	b.SetEntry("A", "main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	if err := m.RunProgram(7, 42); err != nil {
		t.Fatal(err)
	}
	if got := m.Statics.Get(p.Class("A").LookupStatic("got")).Int(); got != 42 {
		t.Errorf("arg(1) = %d", got)
	}
}

func TestYieldRotatesThreads(t *testing.T) {
	// Two threads that yield after every append interleave finely; the
	// recorded pattern must alternate rather than run in whole quanta.
	b := ir.NewBuilder("yield")
	b.Class(ir.StringClass)
	c := b.Class("Y")
	c.Static("log", ir.Array(ir.Int()))
	c.Static("pos", ir.Int())

	w := c.StaticMethod("work", 1, ir.Void())
	we := w.Entry()
	zero := we.ConstInt(0)
	n := we.ConstInt(6)
	exit := we.For(zero, n, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		arr := body.GetStatic("Y", "log")
		pos := body.GetStatic("Y", "pos")
		body.ASet(arr, pos, w.Param(0))
		one := body.ConstInt(1)
		body.PutStatic("Y", "pos", body.Arith(ir.Add, pos, one))
		body.IntrinsicVoid(ir.IntrinsicYield)
		return body
	})
	exit.RetVoid()

	main := b.Class("Main")
	mm := main.StaticMethod("main", 0, ir.Void())
	e := mm.Entry()
	sz := e.ConstInt(16)
	arr := e.NewArray(ir.Int(), sz)
	e.PutStatic("Y", "log", arr)
	one := e.ConstInt(1)
	two := e.ConstInt(2)
	e.Spawn("Y.work", one)
	e.Spawn("Y.work", two)
	e.RetVoid()
	b.SetEntry("Main", "main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	if err := m.RunProgram(); err != nil {
		t.Fatal(err)
	}
	arrObj := m.Statics.Get(p.Class("Y").LookupStatic("log")).Ref
	switches := 0
	for i := 1; i < 12; i++ {
		if arrObj.GetElem(i).Int() != arrObj.GetElem(i-1).Int() {
			switches++
		}
	}
	if switches < 8 {
		t.Errorf("yield produced only %d interleavings", switches)
	}
}
