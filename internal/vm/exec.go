package vm

import (
	"encoding/binary"
	"math"
	"strconv"

	"nimage/internal/heap"
	"nimage/internal/ir"
	"nimage/internal/murmur"
)

// step executes one instruction (or terminator) of the top frame of t.
// It reports whether the thread voluntarily yielded its time slice.
func (m *Machine) step(t *thread) (yielded bool, err error) {
	f := t.frames[len(t.frames)-1]
	blk := f.m.Blocks[f.block]
	if f.ip >= len(blk.Instrs) {
		return false, m.terminate(t, f, blk)
	}
	in := &blk.Instrs[f.ip]
	f.ip++
	m.Cycles += costInstr
	if m.mixOn {
		m.mix[in.Op]++
	}

	if m.AutoClinit {
		var trigger *ir.Class
		switch in.Op {
		case ir.OpNew:
			trigger = in.Class
		case ir.OpGetStatic, ir.OpPutStatic:
			trigger = in.Field.Class
		case ir.OpCall:
			if in.Method.Static && !in.Method.Clinit {
				trigger = in.Method.Class
			}
		}
		if trigger != nil && !m.clinitDone[trigger] && m.ensureInit(t, trigger) {
			f.ip-- // re-execute after the initializers return
			return false, nil
		}
	}

	switch in.Op {
	case ir.OpConstInt:
		f.regs[in.A] = heap.IntVal(in.Val)
	case ir.OpConstFloat:
		f.regs[in.A] = heap.Value{Kind: heap.VFloat, Bits: in.Val}
	case ir.OpConstStr:
		if m.Interns == nil {
			return false, m.trapf(f, "string literal without %s on classpath", ir.StringClass)
		}
		f.regs[in.A] = heap.RefVal(m.internString(in.Sym))
	case ir.OpConstNull:
		f.regs[in.A] = heap.Null()
	case ir.OpMove:
		f.regs[in.A] = f.regs[in.B]
	case ir.OpArith:
		v, e := intArith(ir.ArithOp(in.Val), f.regs[in.B].Int(), f.regs[in.C].Int())
		if e != "" {
			return false, m.trapf(f, "%s", e)
		}
		f.regs[in.A] = heap.IntVal(v)
	case ir.OpFArith:
		f.regs[in.A] = heap.FloatVal(floatArith(ir.ArithOp(in.Val), f.regs[in.B].Float(), f.regs[in.C].Float()))
	case ir.OpCmp:
		f.regs[in.A] = heap.IntVal(boolInt(compare(ir.CmpOp(in.Val), f.regs[in.B], f.regs[in.C])))
	case ir.OpConvIF:
		f.regs[in.A] = heap.FloatVal(float64(f.regs[in.B].Int()))
	case ir.OpConvFI:
		f.regs[in.A] = heap.IntVal(int64(f.regs[in.B].Float()))
	case ir.OpNew:
		m.Cycles += costAlloc
		if m.Hooks.OnNew != nil {
			m.Hooks.OnNew(t.id, in.Class)
		}
		f.regs[in.A] = heap.RefVal(heap.NewObject(in.Class))
	case ir.OpNewArray:
		n := f.regs[in.B].Int()
		if n < 0 || n > 1<<26 {
			return false, m.trapf(f, "array length %d out of range", n)
		}
		m.Cycles += costAlloc + n/8
		f.regs[in.A] = heap.RefVal(heap.NewArray(in.Type, int(n)))
	case ir.OpArrayGet:
		o := f.regs[in.B].Ref
		if o == nil {
			return false, m.trapf(f, "null array load")
		}
		i := f.regs[in.C].Int()
		if i < 0 || i >= int64(o.Len()) {
			return false, m.trapf(f, "index %d out of bounds [0,%d)", i, o.Len())
		}
		m.access(t, o)
		f.regs[in.A] = o.GetElem(int(i))
	case ir.OpArraySet:
		o := f.regs[in.A].Ref
		if o == nil {
			return false, m.trapf(f, "null array store")
		}
		i := f.regs[in.B].Int()
		if i < 0 || i >= int64(o.Len()) {
			return false, m.trapf(f, "index %d out of bounds [0,%d)", i, o.Len())
		}
		m.access(t, o)
		m.recordElemWrite(o, int(i))
		o.SetElem(int(i), f.regs[in.C])
	case ir.OpArrayLen:
		o := f.regs[in.B].Ref
		if o == nil {
			return false, m.trapf(f, "null array length")
		}
		m.access(t, o)
		f.regs[in.A] = heap.IntVal(int64(o.Len()))
	case ir.OpGetField:
		o := f.regs[in.B].Ref
		if o == nil {
			return false, m.trapf(f, "null field load of %s", in.Field.Descriptor())
		}
		m.access(t, o)
		f.regs[in.A] = o.GetField(in.Field)
	case ir.OpPutField:
		o := f.regs[in.A].Ref
		if o == nil {
			return false, m.trapf(f, "null field store of %s", in.Field.Descriptor())
		}
		m.access(t, o)
		m.recordFieldWrite(o, in.Field)
		o.SetField(in.Field, f.regs[in.B])
	case ir.OpGetStatic:
		m.Cycles += costAccess
		f.regs[in.A] = m.Statics.Get(in.Field)
	case ir.OpPutStatic:
		m.Cycles += costAccess
		m.recordStaticWrite(in.Field)
		m.Statics.Set(in.Field, f.regs[in.A])
	case ir.OpCall, ir.OpCallVirt:
		return false, m.call(t, f, in)
	case ir.OpIntrinsic:
		return m.intrinsic(t, f, in)
	default:
		return false, m.trapf(f, "invalid opcode %d", in.Op)
	}
	return false, nil
}

// terminate executes the terminator of the current block.
func (m *Machine) terminate(t *thread, f *frame, blk *ir.Block) error {
	m.Cycles += costInstr
	switch blk.Term.Op {
	case ir.TermGoto:
		m.enterBlock(t, f, blk.Term.Then)
	case ir.TermIf:
		if f.regs[blk.Term.Cond].Truthy() {
			m.enterBlock(t, f, blk.Term.Then)
		} else {
			m.enterBlock(t, f, blk.Term.Else)
		}
	case ir.TermReturn:
		ret := heap.Null()
		if blk.Term.Ret >= 0 {
			ret = f.regs[blk.Term.Ret]
		}
		if m.Hooks.OnMethodExit != nil {
			m.Hooks.OnMethodExit(t.id, f.m)
		}
		t.frames = t.frames[:len(t.frames)-1]
		if len(t.frames) == 0 {
			m.lastResult = ret
			t.done = true
			return nil
		}
		caller := t.frames[len(t.frames)-1]
		if f.retReg >= 0 {
			caller.regs[f.retReg] = ret
		}
	default:
		return m.trapf(f, "invalid terminator %d", blk.Term.Op)
	}
	return nil
}

func (m *Machine) enterBlock(t *thread, f *frame, b int) {
	f.block = b
	f.ip = 0
	if m.Hooks.OnBlock != nil {
		m.Hooks.OnBlock(t.id, f.m, b)
	}
}

// call pushes a new frame for a (possibly virtual) invocation.
func (m *Machine) call(t *thread, f *frame, in *ir.Instr) error {
	m.Cycles += costCall
	callee := in.Method
	if in.Op == ir.OpCallVirt {
		recv := f.regs[in.Args[0]].Ref
		if recv == nil {
			return m.trapf(f, "virtual call %s on null receiver", in.Method.Signature())
		}
		if recv.Class == nil {
			return m.trapf(f, "virtual call %s on array", in.Method.Signature())
		}
		callee = recv.Class.LookupMethod(in.Sym)
		if callee == nil {
			return m.trapf(f, "no target for %s on %s", in.Sym, recv.Class.Name)
		}
	}
	if len(t.frames) >= 512 {
		return m.trapf(f, "stack overflow calling %s", callee.Signature())
	}
	inlined := m.Hooks.InlineOf != nil && m.Hooks.InlineOf(f.ctx, callee)
	ctx := callee
	if inlined {
		ctx = f.ctx
	}
	nf := &frame{
		m:      callee,
		ctx:    ctx,
		regs:   make([]heap.Value, callee.NumRegs),
		retReg: in.A,
	}
	for i := range nf.regs {
		nf.regs[i] = heap.Null()
	}
	for i, a := range in.Args {
		nf.regs[i] = f.regs[a]
	}
	t.frames = append(t.frames, nf)
	if !inlined && m.Hooks.OnEnterCU != nil {
		m.Hooks.OnEnterCU(t.id, callee)
	}
	if m.Hooks.OnMethodEnter != nil {
		m.Hooks.OnMethodEnter(t.id, callee)
	}
	if m.Hooks.OnBlock != nil {
		m.Hooks.OnBlock(t.id, callee, 0)
	}
	return nil
}

// intrinsic executes a built-in operation.
func (m *Machine) intrinsic(t *thread, f *frame, in *ir.Instr) (yielded bool, err error) {
	m.Cycles += costIntrinsic
	argS := func(k int) (*heap.Object, error) {
		o := f.regs[in.Args[k]].Ref
		if o == nil || !o.IsString() {
			return nil, m.trapf(f, "intrinsic %s: argument %d is not a string", in.Sym, k)
		}
		return o, nil
	}
	switch in.Sym {
	case ir.IntrinsicPrint:
		if len(in.Args) == 1 {
			if o := f.regs[in.Args[0]].Ref; o != nil {
				m.touch(t, o)
			}
			if m.Hooks.OnPrint != nil {
				m.Hooks.OnPrint(t.id, f.regs[in.Args[0]])
			}
		}
		m.Cycles += 20
	case ir.IntrinsicArg:
		idx := f.regs[in.Args[0]].Int()
		if idx < 0 || idx >= int64(len(m.IntArgs)) {
			return false, m.trapf(f, "arg index %d out of range [0,%d)", idx, len(m.IntArgs))
		}
		f.regs[in.A] = heap.IntVal(m.IntArgs[idx])
	case ir.IntrinsicRespond:
		if !m.Responded {
			m.Responded = true
			m.CyclesAtRespond = m.Cycles
			if m.Hooks.OnRespond != nil {
				m.Hooks.OnRespond()
			}
		}
		if m.StopOnRespond {
			m.stop = true
			return true, nil
		}
	case ir.IntrinsicSpawn:
		target := spawnTarget(m.Prog, in.CName)
		if target == nil || !target.Static {
			return false, m.trapf(f, "spawn target %q not found or not static", in.CName)
		}
		args := make([]heap.Value, len(in.Args))
		for i, a := range in.Args {
			args[i] = f.regs[a]
		}
		m.Cycles += 200 // thread creation cost
		m.spawnThread(target, args)
	case ir.IntrinsicYield:
		return true, nil
	case ir.IntrinsicBuildSalt:
		m.saltCtr++
		var buf [16]byte
		binary.LittleEndian.PutUint64(buf[:8], m.BuildSalt)
		binary.LittleEndian.PutUint64(buf[8:], m.saltCtr)
		f.regs[in.A] = heap.IntVal(int64(murmur.Sum64(buf[:])))
	case ir.IntrinsicIntern:
		s, e := argS(0)
		if e != nil {
			return false, e
		}
		m.access(t, s)
		f.regs[in.A] = heap.RefVal(m.internString(s.Str))
	case ir.IntrinsicConcat:
		a, e := argS(0)
		if e != nil {
			return false, e
		}
		b, e := argS(1)
		if e != nil {
			return false, e
		}
		m.access(t, a)
		m.access(t, b)
		m.Cycles += int64(len(a.Str)+len(b.Str)) / 4
		f.regs[in.A] = heap.RefVal(heap.NewString(m.stringClass, a.Str+b.Str))
	case ir.IntrinsicStrLen:
		s, e := argS(0)
		if e != nil {
			return false, e
		}
		m.access(t, s)
		f.regs[in.A] = heap.IntVal(int64(len(s.Str)))
	case ir.IntrinsicStrHash:
		s, e := argS(0)
		if e != nil {
			return false, e
		}
		m.access(t, s)
		m.Cycles += int64(len(s.Str)) / 4
		f.regs[in.A] = heap.IntVal(int64(murmur.Sum64([]byte(s.Str))))
	case ir.IntrinsicStrChar:
		str, e := argS(0)
		if e != nil {
			return false, e
		}
		m.access(t, str)
		idx := f.regs[in.Args[1]].Int()
		if idx < 0 || idx >= int64(len(str.Str)) {
			return false, m.trapf(f, "strchar index %d out of range [0,%d)", idx, len(str.Str))
		}
		f.regs[in.A] = heap.IntVal(int64(str.Str[idx]))
	case ir.IntrinsicStrEq:
		sa, e := argS(0)
		if e != nil {
			return false, e
		}
		sb, e := argS(1)
		if e != nil {
			return false, e
		}
		m.access(t, sa)
		m.access(t, sb)
		f.regs[in.A] = heap.IntVal(boolInt(sa.Str == sb.Str))
	case ir.IntrinsicItoa:
		f.regs[in.A] = heap.RefVal(heap.NewString(m.stringClass, strconv.FormatInt(f.regs[in.Args[0]].Int(), 10)))
	case ir.IntrinsicAbsF:
		f.regs[in.A] = heap.FloatVal(math.Abs(f.regs[in.Args[0]].Float()))
	case ir.IntrinsicSqrt:
		f.regs[in.A] = heap.FloatVal(math.Sqrt(f.regs[in.Args[0]].Float()))
	case ir.IntrinsicCos:
		f.regs[in.A] = heap.FloatVal(math.Cos(f.regs[in.Args[0]].Float()))
	case ir.IntrinsicSin:
		f.regs[in.A] = heap.FloatVal(math.Sin(f.regs[in.Args[0]].Float()))
	default:
		return false, m.trapf(f, "unknown intrinsic %q", in.Sym)
	}
	return false, nil
}

// internString interns a literal, journaling additions for rollback.
func (m *Machine) internString(s string) *heap.Object {
	before := len(m.Interns.All())
	o := m.Interns.Intern(s)
	if m.journal != nil && len(m.Interns.All()) > before {
		m.journal.internAdds = append(m.journal.internAdds, s)
	}
	return o
}

// access reports an explicit field/array access to the hooks.
func (m *Machine) access(t *thread, o *heap.Object) {
	m.Cycles += costAccess
	if m.Hooks.OnAccess != nil {
		m.Hooks.OnAccess(t.id, o, true)
	}
}

// touch reports an implicit object touch (string intrinsics, print).
func (m *Machine) touch(t *thread, o *heap.Object) {
	m.Cycles += costAccess
	if m.Hooks.OnAccess != nil {
		m.Hooks.OnAccess(t.id, o, false)
	}
}

// spawnTarget resolves a "Class.method" spawn target.
func spawnTarget(p *ir.Program, target string) *ir.Method {
	for i := len(target) - 1; i >= 0; i-- {
		if target[i] == '.' {
			c := p.Class(target[:i])
			if c == nil {
				return nil
			}
			return c.DeclaredMethod(target[i+1:])
		}
	}
	return nil
}

func intArith(op ir.ArithOp, a, b int64) (int64, string) {
	switch op {
	case ir.Add:
		return a + b, ""
	case ir.Sub:
		return a - b, ""
	case ir.Mul:
		return a * b, ""
	case ir.Div:
		if b == 0 {
			return 0, "integer division by zero"
		}
		return a / b, ""
	case ir.Rem:
		if b == 0 {
			return 0, "integer remainder by zero"
		}
		return a % b, ""
	case ir.And:
		return a & b, ""
	case ir.Or:
		return a | b, ""
	case ir.Xor:
		return a ^ b, ""
	case ir.Shl:
		return a << (uint64(b) & 63), ""
	case ir.Shr:
		return a >> (uint64(b) & 63), ""
	default:
		return 0, "invalid arithmetic operator"
	}
}

func floatArith(op ir.ArithOp, a, b float64) float64 {
	switch op {
	case ir.Add:
		return a + b
	case ir.Sub:
		return a - b
	case ir.Mul:
		return a * b
	case ir.Div:
		return a / b
	case ir.Rem:
		return math.Mod(a, b)
	default:
		return math.NaN()
	}
}

func compare(op ir.CmpOp, a, b heap.Value) bool {
	if a.Kind == heap.VRef || b.Kind == heap.VRef {
		switch op {
		case ir.Eq:
			return a.Ref == b.Ref
		case ir.Ne:
			return a.Ref != b.Ref
		default:
			return false
		}
	}
	if a.Kind == heap.VFloat || b.Kind == heap.VFloat {
		x, y := toF(a), toF(b)
		switch op {
		case ir.Eq:
			return x == y
		case ir.Ne:
			return x != y
		case ir.Lt:
			return x < y
		case ir.Le:
			return x <= y
		case ir.Gt:
			return x > y
		case ir.Ge:
			return x >= y
		}
		return false
	}
	x, y := a.Int(), b.Int()
	switch op {
	case ir.Eq:
		return x == y
	case ir.Ne:
		return x != y
	case ir.Lt:
		return x < y
	case ir.Le:
		return x <= y
	case ir.Gt:
		return x > y
	case ir.Ge:
		return x >= y
	}
	return false
}

func toF(v heap.Value) float64 {
	if v.Kind == heap.VFloat {
		return v.Float()
	}
	return float64(v.Int())
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
