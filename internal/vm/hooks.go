package vm

import (
	"nimage/internal/heap"
	"nimage/internal/ir"
)

// ComposeHooks combines two hook sets: event hooks of both fire (a first),
// and the InlineOf oracle comes from a unless only b provides one. The
// loaded image composes its page-touching hooks with the tracing profiler's
// event hooks this way.
func ComposeHooks(a, b Hooks) Hooks {
	var h Hooks
	h.InlineOf = a.InlineOf
	if h.InlineOf == nil {
		h.InlineOf = b.InlineOf
	}
	h.OnEnterCU = compose2M(a.OnEnterCU, b.OnEnterCU)
	h.OnMethodEnter = compose2M(a.OnMethodEnter, b.OnMethodEnter)
	h.OnMethodExit = compose2M(a.OnMethodExit, b.OnMethodExit)
	h.OnBlock = compose2B(a.OnBlock, b.OnBlock)
	h.OnAccess = compose2A(a.OnAccess, b.OnAccess)
	h.OnNew = compose2N(a.OnNew, b.OnNew)
	h.OnRespond = compose2V(a.OnRespond, b.OnRespond)
	h.OnPrint = compose2P(a.OnPrint, b.OnPrint)
	return h
}

func compose2P(a, b func(int, heap.Value)) func(int, heap.Value) {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(tid int, v heap.Value) { a(tid, v); b(tid, v) }
}

func compose2M(a, b func(int, *ir.Method)) func(int, *ir.Method) {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(tid int, m *ir.Method) { a(tid, m); b(tid, m) }
}

func compose2B(a, b func(int, *ir.Method, int)) func(int, *ir.Method, int) {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(tid int, m *ir.Method, blk int) { a(tid, m, blk); b(tid, m, blk) }
}

func compose2A(a, b func(int, *heap.Object, bool)) func(int, *heap.Object, bool) {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(tid int, o *heap.Object, instr bool) { a(tid, o, instr); b(tid, o, instr) }
}

func compose2N(a, b func(int, *ir.Class)) func(int, *ir.Class) {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(tid int, c *ir.Class) { a(tid, c); b(tid, c) }
}

func compose2V(a, b func()) func() {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func() { a(); b() }
}
