package vm

import (
	"nimage/internal/heap"
	"nimage/internal/ir"
)

// journal records mutations of build-time state (snapshot objects, statics,
// intern table) so that a run can be rolled back, leaving the image pristine
// for the next benchmark iteration. The evaluation runs each built image
// several times (Sec. 7.1); rolling back is the simulator's equivalent of
// starting a fresh process over the same binary file.
type journal struct {
	fieldWrites  []fieldWrite
	elemWrites   []elemWrite
	staticWrites []staticWrite
	internAdds   []string
	seenField    map[fieldKey]bool
	seenElem     map[elemKey]bool
	seenStatic   map[*ir.Field]bool
}

type fieldKey struct {
	o    *heap.Object
	slot int
}
type elemKey struct {
	o   *heap.Object
	idx int
}

type fieldWrite struct {
	o    *heap.Object
	f    *ir.Field
	prev heap.Value
}
type elemWrite struct {
	o    *heap.Object
	idx  int
	prev heap.Value
}
type staticWrite struct {
	f    *ir.Field
	prev heap.Value
}

// EnableJournal starts recording mutations of pre-existing heap state.
// Writes to objects allocated after this call are not journaled (they are
// garbage after the run anyway).
func (m *Machine) EnableJournal() {
	m.journal = &journal{
		seenField:  make(map[fieldKey]bool),
		seenElem:   make(map[elemKey]bool),
		seenStatic: make(map[*ir.Field]bool),
	}
}

// Rollback undoes every journaled mutation in reverse order and stops
// journaling.
func (m *Machine) Rollback() {
	j := m.journal
	if j == nil {
		return
	}
	m.journal = nil
	for i := len(j.fieldWrites) - 1; i >= 0; i-- {
		w := j.fieldWrites[i]
		w.o.SetField(w.f, w.prev)
	}
	for i := len(j.elemWrites) - 1; i >= 0; i-- {
		w := j.elemWrites[i]
		w.o.SetElem(w.idx, w.prev)
	}
	for i := len(j.staticWrites) - 1; i >= 0; i-- {
		w := j.staticWrites[i]
		m.Statics.Set(w.f, w.prev)
	}
	if m.Interns != nil {
		m.Interns.Remove(j.internAdds)
	}
}

// JournalEvent is one journaled mutation of build-time state, in recording
// (execution) order. The equivalence verifier digests these streams: a run
// over a semantically equivalent image must journal the same mutations in
// the same order.
type JournalEvent struct {
	// Kind is "field", "elem", "static", or "intern".
	Kind string
	// Object is the mutated snapshot object ("field"/"elem" events).
	Object *heap.Object
	// Field is the written field ("field"/"static" events).
	Field *ir.Field
	// Index is the written element index ("elem" events).
	Index int
	// Prev is the overwritten value ("field"/"elem"/"static" events).
	Prev heap.Value
	// Literal is the interned string ("intern" events).
	Literal string
}

// JournalEvents returns the journaled mutations recorded so far: the field
// writes, element writes, static writes, and intern additions, each stream
// in execution order (writes record only the first overwrite of each
// location). It returns nil when journaling is off or after Rollback.
func (m *Machine) JournalEvents() []JournalEvent {
	j := m.journal
	if j == nil {
		return nil
	}
	out := make([]JournalEvent, 0,
		len(j.fieldWrites)+len(j.elemWrites)+len(j.staticWrites)+len(j.internAdds))
	for _, w := range j.fieldWrites {
		out = append(out, JournalEvent{Kind: "field", Object: w.o, Field: w.f, Prev: w.prev})
	}
	for _, w := range j.elemWrites {
		out = append(out, JournalEvent{Kind: "elem", Object: w.o, Index: w.idx, Prev: w.prev})
	}
	for _, w := range j.staticWrites {
		out = append(out, JournalEvent{Kind: "static", Field: w.f, Prev: w.prev})
	}
	for _, s := range j.internAdds {
		out = append(out, JournalEvent{Kind: "intern", Literal: s})
	}
	return out
}

// recordFieldWrite journals the first overwrite of a snapshot object field.
func (m *Machine) recordFieldWrite(o *heap.Object, f *ir.Field) {
	j := m.journal
	if j == nil || !o.InSnapshot {
		return
	}
	k := fieldKey{o, f.Slot}
	if j.seenField[k] {
		return
	}
	j.seenField[k] = true
	j.fieldWrites = append(j.fieldWrites, fieldWrite{o: o, f: f, prev: o.GetField(f)})
}

// recordElemWrite journals the first overwrite of a snapshot array element.
func (m *Machine) recordElemWrite(o *heap.Object, idx int) {
	j := m.journal
	if j == nil || !o.InSnapshot {
		return
	}
	k := elemKey{o, idx}
	if j.seenElem[k] {
		return
	}
	j.seenElem[k] = true
	j.elemWrites = append(j.elemWrites, elemWrite{o: o, idx: idx, prev: o.GetElem(idx)})
}

// recordStaticWrite journals the first overwrite of a static field.
func (m *Machine) recordStaticWrite(f *ir.Field) {
	j := m.journal
	if j == nil {
		return
	}
	if j.seenStatic[f] {
		return
	}
	j.seenStatic[f] = true
	j.staticWrites = append(j.staticWrites, staticWrite{f: f, prev: m.Statics.Get(f)})
}
