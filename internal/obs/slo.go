package obs

// SLO scorecards: configurable latency targets (quantile + budget), the
// attainment math over a measured latency sample, and the serialized
// pressure-sweep report document the serve SLO observatory emits
// (`nimage slo`, `nimage-eval -figure slo`). Attainment is judged the
// way an error budget is spent: a target "p99 <= 2ms" tolerates 1% of
// requests over budget, so the score is the measured violation fraction
// against that tolerance, and the burn rate is their ratio — burn <= 1
// attains, burn 3.0 means the run spent its error budget three times
// over.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// SLOSchema versions the serialized SLO report document.
const SLOSchema = "nimage.slo/v1"

// Decode-side hard bounds for SLO report documents.
const (
	maxDecodeTargets     = 1 << 10
	maxDecodeSLOEntries  = 1 << 20
	maxDecodeOverheads   = 1 << 12
	maxDecodePressurePct = 100
)

// SLOTarget is one latency objective: the Quantile-quantile of request
// latency must not exceed BudgetNanos.
type SLOTarget struct {
	Quantile    float64 `json:"quantile"`
	BudgetNanos float64 `json:"budget_nanos"`
}

// String renders the target in the -slo flag syntax (p99=2ms).
func (t SLOTarget) String() string {
	q := strconv.FormatFloat(t.Quantile*100, 'f', -1, 64)
	return fmt.Sprintf("p%s=%v", q, time.Duration(t.BudgetNanos))
}

// DefaultSLOTargets returns the default serve objectives: p50/p95/p99/
// p99.9 budgets spanning the latency range the simulated serve bursts
// produce (sub-millisecond medians, fault-dominated tails).
func DefaultSLOTargets() []SLOTarget {
	return []SLOTarget{
		{Quantile: 0.50, BudgetNanos: 100e3}, // p50 <= 100µs
		{Quantile: 0.95, BudgetNanos: 500e3}, // p95 <= 500µs
		{Quantile: 0.99, BudgetNanos: 2e6},   // p99 <= 2ms
		{Quantile: 0.999, BudgetNanos: 10e6}, // p99.9 <= 10ms
	}
}

// ParseSLOTargets parses a -slo flag value: comma-separated
// p<quantile>=<duration> terms, e.g. "p50=100us,p99=2ms,p99.9=10ms".
// Targets must be strictly increasing in quantile; quantiles must lie
// in (0, 100) percent (p100 has no error budget to burn).
func ParseSLOTargets(s string) ([]SLOTarget, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("slo targets must be non-empty p<quantile>=<duration> terms, e.g. p99=2ms")
	}
	var out []SLOTarget
	for _, term := range strings.Split(s, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		q, budget, ok := strings.Cut(term, "=")
		if !ok || !strings.HasPrefix(q, "p") {
			return nil, fmt.Errorf("slo target %q must be p<quantile>=<duration>, e.g. p99=2ms", term)
		}
		pct, err := strconv.ParseFloat(q[1:], 64)
		if err != nil || math.IsNaN(pct) || pct <= 0 || pct >= 100 {
			return nil, fmt.Errorf("slo quantile in %q must be a percentile in (0, 100), e.g. p99.9", term)
		}
		d, err := time.ParseDuration(budget)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("slo budget in %q must be a positive duration, e.g. 2ms", term)
		}
		out = append(out, SLOTarget{Quantile: pct / 100, BudgetNanos: float64(d.Nanoseconds())})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("slo targets must contain at least one p<quantile>=<duration> term")
	}
	for i := 1; i < len(out); i++ {
		if out[i].Quantile <= out[i-1].Quantile {
			return nil, fmt.Errorf("slo quantiles must be strictly increasing, got %s after %s",
				out[i], out[i-1])
		}
	}
	return out, nil
}

// SLOAttainment is one target's score over a measured latency sample.
type SLOAttainment struct {
	Quantile    float64 `json:"quantile"`
	BudgetNanos float64 `json:"budget_nanos"`
	// MeasuredNanos is the exact nearest-rank quantile of the sample.
	MeasuredNanos float64 `json:"measured_nanos"`
	// Violations counts requests over budget; ViolationFrac is their
	// fraction of Requests.
	Violations    int     `json:"violations"`
	Requests      int     `json:"requests"`
	ViolationFrac float64 `json:"violation_frac"`
	// Attained reports whether the violation fraction stayed within the
	// target's error budget (1 - Quantile); BudgetBurn is the ratio of
	// the two (<= 1 attains).
	Attained   bool    `json:"attained"`
	BudgetBurn float64 `json:"budget_burn"`
}

// Attainment scores a sorted latency sample (nanoseconds, ascending)
// against each target. An empty sample attains trivially (no request
// violated anything).
func Attainment(sorted []float64, targets []SLOTarget) []SLOAttainment {
	out := make([]SLOAttainment, 0, len(targets))
	for _, tg := range targets {
		a := SLOAttainment{
			Quantile:    tg.Quantile,
			BudgetNanos: tg.BudgetNanos,
			Requests:    len(sorted),
			Attained:    true,
		}
		if len(sorted) > 0 {
			a.MeasuredNanos = QuantileExact(sorted, tg.Quantile)
			// First index over budget: everything after it violates.
			idx := sort.SearchFloat64s(sorted, tg.BudgetNanos)
			for idx < len(sorted) && sorted[idx] == tg.BudgetNanos {
				idx++ // at budget is within budget
			}
			a.Violations = len(sorted) - idx
			a.ViolationFrac = float64(a.Violations) / float64(len(sorted))
			tolerance := 1 - tg.Quantile
			if tolerance > 0 {
				a.BudgetBurn = a.ViolationFrac / tolerance
			} else if a.Violations > 0 {
				a.BudgetBurn = math.Inf(1)
			}
			a.Attained = a.BudgetBurn <= 1
		}
		out = append(out, a)
	}
	return out
}

// SLOEntry is one (workload, strategy, pressure) cell of the sweep: the
// attainment of every target over the warm request latencies.
type SLOEntry struct {
	Workload    string `json:"workload"`
	Strategy    string `json:"strategy"`
	PressurePct int    `json:"pressure_pct"`
	Streams     int    `json:"streams"`
	// Requests is the number of warm requests scored (cold burst 0 is
	// excluded, matching the serve figures' warm aggregates).
	Requests    int             `json:"requests"`
	Attainments []SLOAttainment `json:"attainments"`
}

// SLOOverhead is the observatory's own cost, measured in the
// go-observability-bench idiom: the same serve scenario run twice —
// telemetry fully on (registry + request trace) vs fully off — with the
// wall-clock per-request delta reported. The simulated results must be
// identical (telemetry never perturbs the simulation); the delta is
// host wall time, so it is a tracked number, not a deterministic one.
type SLOOverhead struct {
	Workload string `json:"workload"`
	Strategy string `json:"strategy"`
	Requests int    `json:"requests"`
	// Wall nanoseconds per request with telemetry on and off, and the
	// relative overhead ((on-off)/off; negative values are host noise).
	OnWallNanosPerReq  float64 `json:"on_wall_nanos_per_req"`
	OffWallNanosPerReq float64 `json:"off_wall_nanos_per_req"`
	OverheadFrac       float64 `json:"overhead_frac"`
	// SimIdentical reports that the simulated outcomes (startup, every
	// burst, warm aggregates) were bit-identical across the two runs.
	SimIdentical bool `json:"sim_identical"`
}

// SLOReport is the pressure-sweep SLO document (`output/BENCH_slo.json`).
type SLOReport struct {
	Schema string `json:"schema"`
	// Streams is the stream count of the sweep; Pressures its pressure
	// levels in sweep order.
	Streams   int         `json:"streams"`
	Pressures []int       `json:"pressures"`
	Targets   []SLOTarget `json:"targets"`
	Entries   []SLOEntry  `json:"entries"`
	// Overhead carries the telemetry-on/off control runs (one per
	// workload), so the observatory's own cost ships with its numbers.
	Overhead []SLOOverhead `json:"overhead,omitempty"`
}

// WriteSLOReport serializes the report as indented JSON.
func WriteSLOReport(w io.Writer, r *SLOReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("obs: encoding slo report: %w", err)
	}
	return nil
}

// ReadSLOReport deserializes and validates a report written by
// WriteSLOReport.
func ReadSLOReport(r io.Reader) (*SLOReport, error) {
	var rep SLOReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("obs: decoding slo report: %w", err)
	}
	if rep.Schema != SLOSchema {
		return nil, fmt.Errorf("obs: unsupported slo schema %q (want %q)", rep.Schema, SLOSchema)
	}
	if err := rep.validate(); err != nil {
		return nil, fmt.Errorf("obs: invalid slo report: %w", err)
	}
	return &rep, nil
}

func finiteNonNeg(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}

func validTargets(targets []SLOTarget) error {
	if len(targets) > maxDecodeTargets {
		return fmt.Errorf("%d targets exceeds bound %d", len(targets), maxDecodeTargets)
	}
	for i, t := range targets {
		if math.IsNaN(t.Quantile) || t.Quantile <= 0 || t.Quantile >= 1 {
			return fmt.Errorf("target %d: quantile outside (0, 1)", i)
		}
		if !finiteNonNeg(t.BudgetNanos) || t.BudgetNanos == 0 {
			return fmt.Errorf("target %d: budget not a finite positive number", i)
		}
	}
	return nil
}

// validate enforces the structural invariants a decoded report must
// hold before any consumer renders it.
func (r *SLOReport) validate() error {
	if r.Streams < 1 || r.Streams > maxDecodeStreams {
		return fmt.Errorf("stream count %d outside [1, %d]", r.Streams, maxDecodeStreams)
	}
	for _, p := range r.Pressures {
		if p < 0 || p > maxDecodePressurePct {
			return fmt.Errorf("pressure %d%% outside [0, %d]", p, maxDecodePressurePct)
		}
	}
	if err := validTargets(r.Targets); err != nil {
		return err
	}
	if len(r.Entries) > maxDecodeSLOEntries {
		return fmt.Errorf("%d entries exceeds bound %d", len(r.Entries), maxDecodeSLOEntries)
	}
	if len(r.Overhead) > maxDecodeOverheads {
		return fmt.Errorf("%d overhead rows exceeds bound %d", len(r.Overhead), maxDecodeOverheads)
	}
	for i, e := range r.Entries {
		if e.Workload == "" {
			return fmt.Errorf("entry %d: empty workload", i)
		}
		if e.PressurePct < 0 || e.PressurePct > maxDecodePressurePct {
			return fmt.Errorf("entry %d: pressure outside [0, %d]", i, maxDecodePressurePct)
		}
		if e.Streams < 1 || e.Streams > maxDecodeStreams || e.Requests < 0 {
			return fmt.Errorf("entry %d: stream or request count out of range", i)
		}
		if len(e.Attainments) > maxDecodeTargets {
			return fmt.Errorf("entry %d: %d attainments exceeds bound %d", i, len(e.Attainments), maxDecodeTargets)
		}
		for j, a := range e.Attainments {
			if math.IsNaN(a.Quantile) || a.Quantile <= 0 || a.Quantile >= 1 {
				return fmt.Errorf("entry %d attainment %d: quantile outside (0, 1)", i, j)
			}
			if !finiteNonNeg(a.BudgetNanos) || !finiteNonNeg(a.MeasuredNanos) {
				return fmt.Errorf("entry %d attainment %d: budget or measurement not finite non-negative", i, j)
			}
			if a.Violations < 0 || a.Requests < 0 || a.Violations > a.Requests {
				return fmt.Errorf("entry %d attainment %d: violation count out of range", i, j)
			}
			if math.IsNaN(a.ViolationFrac) || a.ViolationFrac < 0 || a.ViolationFrac > 1 {
				return fmt.Errorf("entry %d attainment %d: violation fraction outside [0, 1]", i, j)
			}
			if math.IsNaN(a.BudgetBurn) || a.BudgetBurn < 0 {
				return fmt.Errorf("entry %d attainment %d: negative or NaN budget burn", i, j)
			}
		}
	}
	for i, o := range r.Overhead {
		if o.Workload == "" {
			return fmt.Errorf("overhead %d: empty workload", i)
		}
		if o.Requests < 0 {
			return fmt.Errorf("overhead %d: negative request count", i)
		}
		if !finiteNonNeg(o.OnWallNanosPerReq) || !finiteNonNeg(o.OffWallNanosPerReq) {
			return fmt.Errorf("overhead %d: wall nanos not finite non-negative", i)
		}
		if math.IsNaN(o.OverheadFrac) || math.IsInf(o.OverheadFrac, 0) {
			return fmt.Errorf("overhead %d: overhead fraction not finite", i)
		}
	}
	return nil
}
