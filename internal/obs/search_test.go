package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleSearchReport() *SearchReport {
	return &SearchReport{
		Schema:      SearchSchema,
		Workload:    "serve-api",
		Strategy:    "slo-search",
		Seed:        0x5ea2c4,
		BudgetIters: 2,
		TopK:        2,
		Pressures:   []int{30, 70},
		Targets:     DefaultSLOTargets(),
		Iterations: []SearchIteration{
			{
				Iter:      0,
				Incumbent: "c3",
				Candidates: []SearchCandidateRecord{
					{
						ID: "c3", Op: "seed", OrderDigest: "ab54c1d2e3f40596",
						PredictedRefaults: 120, PredictedLocality: 0.81,
						Promoted: true, Attained: 7, Targets: 8,
						BudgetBurn: 0.4, RefaultGeomean: 1.7,
						Accepted: true, Reason: "best seed scorecard",
					},
					{
						ID: "ext-tsp", Op: "seed", OrderDigest: "1f2e3d4c5b6a7988",
						PredictedRefaults: 140, PredictedLocality: 0.78,
						Promoted: true, Attained: 7, Targets: 8,
						BudgetBurn: 0.5, RefaultGeomean: 1.6,
						Reason: "weaker seed scorecard",
					},
				},
			},
			{
				Iter:      1,
				Incumbent: "perturb/i1/k0/swap",
				Candidates: []SearchCandidateRecord{
					{
						ID: "perturb/i1/k0/swap", Op: "perturb", OrderDigest: "9e8d7c6b5a493827",
						PredictedRefaults: 110, PredictedLocality: 0.83,
						Promoted: true, Attained: 8, Targets: 8,
						BudgetBurn: 0.3, RefaultGeomean: 1.8,
						Accepted: true, Reason: "strictly improves scorecard",
					},
					{
						ID: "c3/limit=4096", Op: "c3-sweep", OrderDigest: "abc123",
						PredictedRefaults: 200, PredictedLocality: 0.70,
						Reason: "below promotion cut",
					},
				},
			},
		},
		Final: SearchFinal{
			Candidate: "perturb/i1/k0/swap", Symbols: 42,
			OrderDigest: "9e8d7c6b5a493827",
			Attained:    8, Targets: 8, BudgetBurn: 0.3, RefaultGeomean: 1.8,
		},
	}
}

func TestSearchReportCodecRoundTrip(t *testing.T) {
	rep := sampleSearchReport()
	var buf bytes.Buffer
	if err := WriteSearchReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSearchReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip changed the journal:\n%s\n%s", a, b)
	}
}

func TestReadSearchReportRejectsHostile(t *testing.T) {
	valid := `"workload":"w","strategy":"s","pressures":[30],"targets":[{"quantile":0.5,"budget_nanos":1}]`
	finalOK := `"final":{"candidate":"c3","symbols":1,"order_digest":"ab","attained":0,"targets":0}`
	for name, doc := range map[string]string{
		"bad schema":        `{"schema":"nope"}`,
		"empty workload":    `{"schema":"nimage.search/v1","strategy":"s","pressures":[30],"targets":[{"quantile":0.5,"budget_nanos":1}],` + finalOK + `}`,
		"no pressures":      `{"schema":"nimage.search/v1","workload":"w","strategy":"s","targets":[{"quantile":0.5,"budget_nanos":1}],` + finalOK + `}`,
		"bad pressure":      `{"schema":"nimage.search/v1",` + valid + `,"pressures":[130],` + finalOK + `}`,
		"no targets":        `{"schema":"nimage.search/v1","workload":"w","strategy":"s","pressures":[30],` + finalOK + `}`,
		"negative budget":   `{"schema":"nimage.search/v1",` + valid + `,"budget_iters":-1,` + finalOK + `}`,
		"huge top-k":        `{"schema":"nimage.search/v1",` + valid + `,"top_k":99999999,` + finalOK + `}`,
		"empty incumbent":   `{"schema":"nimage.search/v1",` + valid + `,"iterations":[{"iter":0,"incumbent":""}],` + finalOK + `}`,
		"empty cand id":     `{"schema":"nimage.search/v1",` + valid + `,"iterations":[{"iter":0,"incumbent":"c3","candidates":[{"id":"","op":"seed","order_digest":"ab","reason":"r"}]}],` + finalOK + `}`,
		"bad digest":        `{"schema":"nimage.search/v1",` + valid + `,"iterations":[{"iter":0,"incumbent":"c3","candidates":[{"id":"x","op":"seed","order_digest":"XYZ","reason":"r"}]}],` + finalOK + `}`,
		"empty reason":      `{"schema":"nimage.search/v1",` + valid + `,"iterations":[{"iter":0,"incumbent":"c3","candidates":[{"id":"x","op":"seed","order_digest":"ab","reason":""}]}],` + finalOK + `}`,
		"neg refaults":      `{"schema":"nimage.search/v1",` + valid + `,"iterations":[{"iter":0,"incumbent":"c3","candidates":[{"id":"x","op":"seed","order_digest":"ab","predicted_refaults":-1,"reason":"r"}]}],` + finalOK + `}`,
		"accept unmeasured": `{"schema":"nimage.search/v1",` + valid + `,"iterations":[{"iter":0,"incumbent":"c3","candidates":[{"id":"x","op":"seed","order_digest":"ab","accepted":true,"reason":"r"}]}],` + finalOK + `}`,
		"attained oob":      `{"schema":"nimage.search/v1",` + valid + `,"iterations":[{"iter":0,"incumbent":"c3","candidates":[{"id":"x","op":"seed","order_digest":"ab","promoted":true,"attained":9,"targets":8,"reason":"r"}]}],` + finalOK + `}`,
		"no final":          `{"schema":"nimage.search/v1",` + valid + `}`,
		"neg symbols":       `{"schema":"nimage.search/v1",` + valid + `,"final":{"candidate":"c3","symbols":-1,"order_digest":"ab"}}`,
		"final bad digest":  `{"schema":"nimage.search/v1",` + valid + `,"final":{"candidate":"c3","symbols":1,"order_digest":"nope"}}`,
		"nan burn":          `{"schema":"nimage.search/v1",` + valid + `,"final":{"candidate":"c3","symbols":1,"order_digest":"ab","budget_burn":-2}}`,
		"not json":          `]`,
	} {
		if _, err := ReadSearchReport(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// FuzzSearchCodec: any input must either be rejected or decode to a
// journal that re-encodes and re-decodes to the same value (accepted
// inputs are a round-trip fixed point), and no input may panic the
// decoder.
func FuzzSearchCodec(f *testing.F) {
	var rep bytes.Buffer
	if err := WriteSearchReport(&rep, sampleSearchReport()); err != nil {
		f.Fatal(err)
	}
	f.Add(rep.Bytes())
	f.Add([]byte(`{"schema":"nimage.search/v1","workload":"w","strategy":"s","pressures":[30],"targets":[{"quantile":0.5,"budget_nanos":1}],"final":{"candidate":"c3","symbols":0,"order_digest":"0"}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := ReadSearchReport(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteSearchReport(&buf, rep); err != nil {
			t.Fatalf("accepted journal failed to encode: %v", err)
		}
		again, err := ReadSearchReport(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded journal rejected: %v", err)
		}
		a, _ := json.Marshal(rep)
		b, _ := json.Marshal(again)
		if !bytes.Equal(a, b) {
			t.Fatalf("journal round trip not a fixed point:\n%s\n%s", a, b)
		}
	})
}
