package attrib

import (
	"testing"

	"nimage/internal/osim"
)

func TestRecorderEvictionAttribution(t *testing.T) {
	ix := testIndex()
	r := NewRecorder(ix)
	// Page 1 (.text, shared by CUs A and B) is evicted under pressure,
	// then major-faults back in: both CUs are charged the eviction and
	// the re-fault.
	r.OnFault(osim.FaultEvent{Off: 4096, Page: 1, Section: 0, Major: true, IONanos: 1000})
	r.OnEvict(osim.EvictionEvent{Off: 4096, Page: 1, Section: 0, Cause: osim.EvictPressure, Mapped: true})
	r.OnFault(osim.FaultEvent{Off: 4096, Page: 1, Section: 0, Major: true, IONanos: 1000})
	tb := r.Table()
	sec := tb.Section(".text")
	if sec.Evicted != 1 || sec.Refaults != 1 {
		t.Fatalf(".text evicted=%d refaults=%d, want 1/1", sec.Evicted, sec.Refaults)
	}
	for _, name := range []string{"A.run(0)", "B.run(0)"} {
		found := false
		for _, s := range tb.Symbols {
			if s.Name == name {
				found = true
				if s.Evicted != 1 || s.Refaults != 1 {
					t.Fatalf("%s evicted=%d refaults=%d, want 1/1", name, s.Evicted, s.Refaults)
				}
			}
		}
		if !found {
			t.Fatalf("symbol %s missing from table", name)
		}
	}
}

func TestRecorderDropDisarmsRefault(t *testing.T) {
	ix := testIndex()
	r := NewRecorder(ix)
	r.OnFault(osim.FaultEvent{Off: 0, Page: 0, Section: 0, Major: true})
	r.OnEvict(osim.EvictionEvent{Off: 0, Page: 0, Section: 0, Cause: osim.EvictPressure, Mapped: true})
	// DropCaches evicts nothing here (already out), but a drop event on
	// the page must disarm re-fault tracking.
	r.OnEvict(osim.EvictionEvent{Off: 0, Page: 0, Section: 0, Cause: osim.EvictDrop})
	r.OnFault(osim.FaultEvent{Off: 0, Page: 0, Section: 0, Major: true})
	tb := r.Table()
	if got := tb.Section(".text").Refaults; got != 0 {
		t.Fatalf("refaults after drop = %d, want 0", got)
	}
	if got := tb.Section(".text").Evicted; got != 2 {
		t.Fatalf("evicted = %d, want 2 (pressure + drop both counted)", got)
	}
}

func TestRecorderMinorFaultOnEvictedPageNotRefault(t *testing.T) {
	ix := testIndex()
	r := NewRecorder(ix)
	r.OnEvict(osim.EvictionEvent{Off: 8192, Page: 2, Section: 1, Cause: osim.EvictBudget})
	// A minor fault (page came back via readahead) is not a re-fault.
	r.OnFault(osim.FaultEvent{Off: 8192, Page: 2, Section: 1, Major: false})
	if got := r.Table().Section(".svm_heap").Refaults; got != 0 {
		t.Fatalf("minor fault counted as refault: %d", got)
	}
}

// TestRecorderReconcilesWithFile is the end-to-end reconciliation
// contract: driving a real osim mapping under budget pressure with the
// recorder attached as both observers, the recorder's per-section
// eviction and re-fault totals must equal the file's own counters, and
// its fault totals must still match the mapping's per-section counts.
func TestRecorderReconcilesWithFile(t *testing.T) {
	o := osim.NewOS(osim.SSD())
	o.FaultAround = 1
	o.CacheBudget = 2
	sections := []osim.Section{
		{Name: ".text", Off: 0, Len: 8192},
		{Name: ".svm_heap", Off: 8192, Len: 8192},
	}
	f, err := o.NewFile("bin", 16384, sections)
	if err != nil {
		t.Fatal(err)
	}
	ix := testIndex()
	r := NewRecorder(ix)
	m := f.Map()
	m.Observer = r
	m.EvictObserver = r
	for _, p := range []int64{0, 1, 2, 3, 0, 3, 1, 2, 0} {
		m.Touch(p * osim.PageSize)
	}
	o.Reclaim(1)
	m.Touch(0)
	tb := r.Table()
	var recEvicted, recRefaults int64
	for _, s := range tb.Sections {
		recEvicted += s.Evicted
		recRefaults += s.Refaults
	}
	if recEvicted != f.EvictedPages() {
		t.Fatalf("recorder evicted %d, file %d", recEvicted, f.EvictedPages())
	}
	if recRefaults != f.RefaultedPages() {
		t.Fatalf("recorder refaults %d, file %d", recRefaults, f.RefaultedPages())
	}
	if recRefaults != m.Refaults {
		t.Fatalf("recorder refaults %d, mapping %d", recRefaults, m.Refaults)
	}
	// Per-section eviction counts match the file's section attribution.
	bySec := f.EvictionsBySection()
	for i, s := range sections {
		if got := tb.Section(s.Name).Evicted; got != bySec[i].Pages {
			t.Fatalf("section %s: recorder evicted %d, file %d", s.Name, got, bySec[i].Pages)
		}
	}
	// The fault-side reconciliation contract still holds under eviction.
	for _, sf := range m.AllSectionFaults() {
		st := tb.Section(sf.Section)
		if st.Major != sf.Major || st.Minor != sf.Minor {
			t.Fatalf("section %s: recorder %d/%d, mapping %d/%d",
				sf.Section, st.Major, st.Minor, sf.Major, sf.Minor)
		}
	}
}

func TestMergeCarriesEvictionCounts(t *testing.T) {
	a := &Table{
		Schema: TableSchema, Runs: 1,
		Sections: []SectionTotal{{Section: ".text", Major: 1, Evicted: 2, Refaults: 1}},
		Symbols:  []SymbolFaults{{Symbol: Symbol{Name: "A"}, Faults: 1, Evicted: 2, Refaults: 1}},
	}
	b := &Table{
		Schema: TableSchema, Runs: 1,
		Sections: []SectionTotal{{Section: ".text", Major: 1, Evicted: 3, Refaults: 2}},
		Symbols:  []SymbolFaults{{Symbol: Symbol{Name: "A"}, Faults: 1, Evicted: 3, Refaults: 2}},
	}
	m := Merge(a, b)
	if got := m.Section(".text"); got.Evicted != 5 || got.Refaults != 3 {
		t.Fatalf("merged section evicted=%d refaults=%d, want 5/3", got.Evicted, got.Refaults)
	}
	if m.Symbols[0].Evicted != 5 || m.Symbols[0].Refaults != 3 {
		t.Fatalf("merged symbol evicted=%d refaults=%d, want 5/3", m.Symbols[0].Evicted, m.Symbols[0].Refaults)
	}
}
