package attrib

// pprof export: the attribution table serialized in the pprof
// profile.proto wire format, so `go tool pprof` (top/peek/web/diff) works
// on simulated page-fault profiles. The encoder writes the protobuf by
// hand — the toolchain deliberately has no dependencies — and pprof_decode
// in this file parses the same subset back for the golden-file tests.
//
// Shape: one sample per faulted symbol with the location stack
// symbol → type → section (leaf first), sample values
// [faults, major_faults, io nanoseconds], and labels carrying the symbol
// kind, first-fault ordinal, and fault-around waste bytes.

import (
	"compress/gzip"
	"fmt"
	"io"
)

// Sample type names/units of the exported profile.
const (
	sampleFaults = "faults"
	sampleMajor  = "major_faults"
	sampleIO     = "io"
)

// protoBuf is a minimal protobuf wire-format writer.
type protoBuf struct{ b []byte }

func (p *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

func (p *protoBuf) tag(field, wire int) { p.varint(uint64(field)<<3 | uint64(wire)) }

// intField emits a varint-encoded int64 field (skipping zero, as proto3
// encoders do).
func (p *protoBuf) intField(field int, v int64) {
	if v == 0 {
		return
	}
	p.tag(field, 0)
	p.varint(uint64(v))
}

func (p *protoBuf) boolField(field int, v bool) {
	if v {
		p.tag(field, 0)
		p.varint(1)
	}
}

func (p *protoBuf) strField(field int, s string) {
	if s == "" {
		return
	}
	p.tag(field, 2)
	p.varint(uint64(len(s)))
	p.b = append(p.b, s...)
}

func (p *protoBuf) msgField(field int, m *protoBuf) {
	p.tag(field, 2)
	p.varint(uint64(len(m.b)))
	p.b = append(p.b, m.b...)
}

// packedInts emits a packed repeated varint field.
func (p *protoBuf) packedInts(field int, vs []int64) {
	if len(vs) == 0 {
		return
	}
	var body protoBuf
	for _, v := range vs {
		body.varint(uint64(v))
	}
	p.tag(field, 2)
	p.varint(uint64(len(body.b)))
	p.b = append(p.b, body.b...)
}

// strtab interns strings into the profile string table (index 0 = "").
type strtab struct {
	idx map[string]int64
	tab []string
}

func newStrtab() *strtab {
	return &strtab{idx: map[string]int64{"": 0}, tab: []string{""}}
}

func (s *strtab) id(v string) int64 {
	if i, ok := s.idx[v]; ok {
		return i
	}
	i := int64(len(s.tab))
	s.idx[v] = i
	s.tab = append(s.tab, v)
	return i
}

// WritePprof writes the table as a gzipped pprof protobuf profile.
func WritePprof(w io.Writer, t *Table) error {
	var prof protoBuf
	st := newStrtab()

	valueType := func(typ, unit string) *protoBuf {
		var vt protoBuf
		vt.intField(1, st.id(typ))
		vt.intField(2, st.id(unit))
		return &vt
	}
	prof.msgField(1, valueType(sampleFaults, "count"))
	prof.msgField(1, valueType(sampleMajor, "count"))
	prof.msgField(1, valueType(sampleIO, "nanoseconds"))

	// One mapping covering the image file.
	filename := t.Workload + ".bin"
	var mp protoBuf
	mp.intField(1, 1) // id
	mp.intField(3, t.FileSize)
	mp.intField(5, st.id(filename))
	mp.boolField(7, true) // has_functions

	// Functions and locations: one function per distinct frame name, one
	// location per function (addresses identify the leaf symbols).
	funcID := map[string]int64{}
	locID := map[string]int64{}
	var funcs, locs []*protoBuf
	locOf := func(name string, addr int64) int64 {
		if id, ok := locID[name]; ok {
			return id
		}
		fid, ok := funcID[name]
		if !ok {
			fid = int64(len(funcs) + 1)
			funcID[name] = fid
			var fn protoBuf
			fn.intField(1, fid)
			fn.intField(2, st.id(name))
			fn.intField(3, st.id(name))
			fn.intField(4, st.id(filename))
			funcs = append(funcs, &fn)
		}
		id := int64(len(locs) + 1)
		locID[name] = id
		var line protoBuf
		line.intField(1, fid)
		var loc protoBuf
		loc.intField(1, id)
		loc.intField(2, 1) // mapping_id
		loc.intField(3, addr)
		loc.msgField(4, &line)
		locs = append(locs, &loc)
		return id
	}

	numLabel := func(key string, v int64, unit string) *protoBuf {
		var lb protoBuf
		lb.intField(1, st.id(key))
		lb.intField(3, v)
		if unit != "" {
			lb.intField(4, st.id(unit))
		}
		return &lb
	}

	var samples []*protoBuf
	for _, s := range t.Symbols {
		if s.Faults == 0 {
			continue
		}
		stack := []int64{locOf(s.Name, s.Off)}
		if s.Type != "" && s.Type != s.Name {
			stack = append(stack, locOf(s.Type, 0))
		}
		if s.Section != "" {
			stack = append(stack, locOf(s.Section, 0))
		}
		var sm protoBuf
		sm.packedInts(1, stack)
		sm.packedInts(2, []int64{s.Faults, s.Major, s.IONanos})
		var kind protoBuf
		kind.intField(1, st.id("kind"))
		kind.intField(2, st.id(s.Kind))
		sm.msgField(3, &kind)
		if s.FirstOrdinal > 0 {
			sm.msgField(3, numLabel("first_fault_ordinal", s.FirstOrdinal, ""))
		}
		if s.ResidentUnusedBytes > 0 {
			sm.msgField(3, numLabel("resident_unused", s.ResidentUnusedBytes, "bytes"))
		}
		samples = append(samples, &sm)
	}
	for _, sm := range samples {
		prof.msgField(2, sm)
	}
	prof.msgField(3, &mp)
	for _, loc := range locs {
		prof.msgField(4, loc)
	}
	for _, fn := range funcs {
		prof.msgField(5, fn)
	}
	// period_type faults/count, period 1: one fault per sampled fault.
	prof.msgField(11, valueType(sampleFaults, "count"))
	prof.intField(12, 1)
	if t.Layout != "" {
		prof.intField(13, st.id("layout: "+t.Layout))
	}
	// The string table goes last: every id() call above must have interned
	// its string before the table is frozen, or indices would dangle.
	for _, s := range st.tab {
		// Entries are written even when empty: index 0 must exist on the
		// wire for strict parsers.
		prof.tag(6, 2)
		prof.varint(uint64(len(s)))
		prof.b = append(prof.b, s...)
	}

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(prof.b); err != nil {
		return fmt.Errorf("attrib: writing pprof profile: %w", err)
	}
	return gz.Close()
}
