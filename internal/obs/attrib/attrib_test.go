package attrib

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"nimage/internal/osim"
)

// testIndex builds a 4-page layout with symbols that deliberately share
// pages:
//
//	page 0: header (64B) + CU A (64..6064 spans into page 1)
//	page 1: CU A + CU B (6064..8192)
//	page 2: obj O1 (8192..8292) + obj O2 (8292..16292 spans into page 3)
//	page 3: obj O2
func testIndex() *Index {
	sections := []osim.Section{
		{Name: ".text", Off: 0, Len: 8192},
		{Name: ".svm_heap", Off: 8192, Len: 8192},
	}
	syms := []Symbol{
		{Name: "<header>", Kind: KindHeader, Off: 0, Len: 64},
		{Name: "A.run(0)", Type: "A", Kind: KindCU, Section: ".text", Off: 64, Len: 6000},
		{Name: "B.run(0)", Type: "B", Kind: KindCU, Section: ".text", Off: 6064, Len: 2128},
		{Name: "hub:O1", Type: "O1", Kind: KindObject, Section: ".svm_heap", Off: 8192, Len: 100},
		{Name: "O2#0", Type: "O2", Kind: KindObject, Section: ".svm_heap", Off: 8292, Len: 8000},
		{Name: "empty", Kind: KindObject, Off: 8292, Len: 0},
	}
	return NewIndex(16384, sections, syms)
}

func namesOf(ix *Index, idxs []int) []string {
	var out []string
	for _, i := range idxs {
		out = append(out, ix.Symbols()[i].Name)
	}
	return out
}

func TestIndexSymbolsOnPage(t *testing.T) {
	ix := testIndex()
	if ix.Pages() != 4 {
		t.Fatalf("pages = %d, want 4", ix.Pages())
	}
	cases := []struct {
		page int
		want []string
	}{
		{0, []string{"<header>", "A.run(0)"}},
		{1, []string{"A.run(0)", "B.run(0)"}},
		{2, []string{"hub:O1", "O2#0"}}, // zero-length "empty" skipped
		{3, []string{"O2#0"}},
		{4, nil},
	}
	for _, c := range cases {
		if got := namesOf(ix, ix.SymbolsOnPage(c.page)); !reflect.DeepEqual(got, c.want) {
			t.Errorf("page %d: symbols = %v, want %v", c.page, got, c.want)
		}
	}
	if got := ix.SectionName(0); got != ".text" {
		t.Errorf("SectionName(0) = %q", got)
	}
	if got := ix.SectionName(2); got != "<other>" {
		t.Errorf("SectionName(2) = %q, want <other>", got)
	}
}

func TestRecorderAttribution(t *testing.T) {
	ix := testIndex()
	r := NewRecorder(ix)
	r.OnFault(osim.FaultEvent{Off: 0, Page: 0, Section: 0, Major: true, IONanos: 1000})
	r.OnFault(osim.FaultEvent{Off: 4096, Page: 1, Section: 0, Major: false})
	r.OnFault(osim.FaultEvent{Off: 8192, Page: 2, Section: 1, Major: true, IONanos: 500})
	states := make([]osim.PageState, 4)
	states[0] = osim.PageFaulted
	states[1] = osim.PageFaulted
	states[2] = osim.PageFaulted
	states[3] = osim.PageMappedNoFault // fault-around pulled in, never used
	r.Finish(states)
	tab := r.Table()

	if tab.Schema != TableSchema || tab.Runs != 1 || tab.Pages != 4 {
		t.Fatalf("table header: %+v", tab)
	}
	wantSections := []SectionTotal{
		{Section: ".text", Major: 1, Minor: 1, IONanos: 1000},
		{Section: ".svm_heap", Major: 1, IONanos: 500},
	}
	if !reflect.DeepEqual(tab.Sections, wantSections) {
		t.Errorf("sections = %+v, want %+v", tab.Sections, wantSections)
	}
	if tab.TotalFaults() != 3 {
		t.Errorf("total faults = %d, want 3", tab.TotalFaults())
	}

	by := map[string]SymbolFaults{}
	for _, s := range tab.Symbols {
		by[s.Name] = s
	}
	a := by["A.run(0)"]
	if a.Faults != 2 || a.Major != 1 || a.Minor != 1 || a.IONanos != 1000 || a.FirstOrdinal != 1 {
		t.Errorf("A: %+v", a)
	}
	if h := by["<header>"]; h.Faults != 1 || h.FirstOrdinal != 1 {
		t.Errorf("header: %+v", h)
	}
	if b := by["B.run(0)"]; b.Faults != 1 || b.Minor != 1 || b.FirstOrdinal != 2 {
		t.Errorf("B: %+v", b)
	}
	// O2 overlaps the unused page 3 with bytes [12288, 16292).
	o2 := by["O2#0"]
	if o2.Faults != 1 || o2.FirstOrdinal != 3 {
		t.Errorf("O2: %+v", o2)
	}
	if want := int64(16292 - 12288); o2.ResidentUnusedBytes != want {
		t.Errorf("O2 waste = %d, want %d", o2.ResidentUnusedBytes, want)
	}
	// Ranking: A (2 faults) first, then by I/O among the 1-fault symbols.
	if tab.Symbols[0].Name != "A.run(0)" {
		t.Errorf("rank[0] = %q, want A.run(0)", tab.Symbols[0].Name)
	}
	wantHeat := []PageHeat{
		{Page: 0, Count: 1, Major: 1, Section: ".text"},
		{Page: 1, Count: 1, Section: ".text"},
		{Page: 2, Count: 1, Major: 1, Section: ".svm_heap"},
	}
	if !reflect.DeepEqual(tab.Heat, wantHeat) {
		t.Errorf("heat = %+v, want %+v", tab.Heat, wantHeat)
	}
}

// The per-symbol fault sum is >= the per-section totals whenever symbols
// share pages — but the section totals themselves must track the event
// stream exactly (one bucket per fault).
func TestRecorderSectionReconciliation(t *testing.T) {
	ix := testIndex()
	r := NewRecorder(ix)
	for p := 0; p < 4; p++ {
		sec := 0
		if p >= 2 {
			sec = 1
		}
		r.OnFault(osim.FaultEvent{Off: int64(p) * osim.PageSize, Page: p, Section: sec, Major: p%2 == 0, IONanos: 10})
	}
	tab := r.Table()
	if got := tab.Section(".text").Total(); got != 2 {
		t.Errorf(".text total = %d, want 2", got)
	}
	if got := tab.Section(".svm_heap").Total(); got != 2 {
		t.Errorf(".svm_heap total = %d, want 2", got)
	}
	var symFaults int64
	for _, s := range tab.Symbols {
		symFaults += s.Faults
	}
	if symFaults < tab.TotalFaults() {
		t.Errorf("symbol faults %d < section faults %d: pages lost", symFaults, tab.TotalFaults())
	}
}

func TestMergeTables(t *testing.T) {
	mk := func(first int64) *Table {
		ix := testIndex()
		r := NewRecorder(ix)
		r.OnFault(osim.FaultEvent{Page: 0, Section: 0, Major: true, IONanos: 100})
		tab := r.Table()
		tab.Workload, tab.Layout = "Bounce", "cu"
		for i := range tab.Symbols {
			tab.Symbols[i].FirstOrdinal = first
		}
		return tab
	}
	m := Merge(mk(5), nil, mk(2))
	if m.Runs != 2 || m.Workload != "Bounce" || m.Layout != "cu" {
		t.Fatalf("merge header: %+v", m)
	}
	if m.TotalFaults() != 2 {
		t.Errorf("merged faults = %d, want 2", m.TotalFaults())
	}
	for _, s := range m.Symbols {
		if s.Faults != 2 {
			t.Errorf("%s faults = %d, want 2", s.Name, s.Faults)
		}
		if s.FirstOrdinal != 2 {
			t.Errorf("%s first ordinal = %d, want min-nonzero 2", s.Name, s.FirstOrdinal)
		}
	}
	if len(m.Heat) != 1 || m.Heat[0].Count != 2 {
		t.Errorf("merged heat: %+v", m.Heat)
	}
}

func TestDiffTables(t *testing.T) {
	base := &Table{
		Schema: TableSchema, Layout: "identity",
		Sections: []SectionTotal{{Section: ".text", Major: 6}},
		Symbols: []SymbolFaults{
			{Symbol: Symbol{Name: "X", Kind: KindCU, Section: ".text"}, Faults: 3, IONanos: 300},
			{Symbol: Symbol{Name: "Y", Kind: KindCU, Section: ".text"}, Faults: 2, IONanos: 200},
			{Symbol: Symbol{Name: "Z", Kind: KindCU, Section: ".text"}, Faults: 1, IONanos: 100},
		},
	}
	opt := &Table{
		Schema: TableSchema, Layout: "cu",
		Sections: []SectionTotal{{Section: ".text", Major: 5}},
		Symbols: []SymbolFaults{
			{Symbol: Symbol{Name: "Y", Kind: KindCU, Section: ".text"}, Faults: 1, IONanos: 80},
			{Symbol: Symbol{Name: "W", Kind: KindCU, Section: ".text"}, Faults: 4, IONanos: 400},
		},
	}
	d := DiffTables(base, opt)
	if d.BaselineLayout != "identity" || d.OptimizedLayout != "cu" {
		t.Fatalf("layouts: %+v", d)
	}
	if d.BaselineFaults != 6 || d.OptimizedFaults != 5 {
		t.Errorf("totals: %d -> %d", d.BaselineFaults, d.OptimizedFaults)
	}
	elim := func(es []DiffEntry) []string {
		var out []string
		for _, e := range es {
			out = append(out, e.Name)
		}
		return out
	}
	if got := elim(d.Eliminated); !reflect.DeepEqual(got, []string{"X", "Z"}) {
		t.Errorf("eliminated = %v", got)
	}
	if got := elim(d.Survived); !reflect.DeepEqual(got, []string{"Y"}) {
		t.Errorf("survived = %v", got)
	}
	if got := elim(d.New); !reflect.DeepEqual(got, []string{"W"}) {
		t.Errorf("new = %v", got)
	}
	if y := d.Survived[0]; y.Baseline != 2 || y.Optimized != 1 || y.IODeltaNanos != -120 {
		t.Errorf("survived Y: %+v", y)
	}
	if y := d.Survived[0]; y.Delta() != -1 {
		t.Errorf("delta = %d", y.Delta())
	}
}

func TestTableRoundTrip(t *testing.T) {
	ix := testIndex()
	r := NewRecorder(ix)
	r.OnFault(osim.FaultEvent{Page: 1, Section: 0, Major: true, IONanos: 42})
	tab := r.Table()
	tab.Workload = "Bounce"

	var buf bytes.Buffer
	if err := WriteTable(&buf, tab); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tab) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tab)
	}

	if _, err := ReadTable(strings.NewReader(`{"schema":"bogus/v9"}`)); err == nil {
		t.Error("bogus schema accepted")
	}
}
