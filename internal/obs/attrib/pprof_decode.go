package attrib

// Minimal pprof profile.proto reader for the subset WritePprof emits. It
// exists so tests (and tooling) can decode an exported profile back into
// symbol stacks and totals without depending on the pprof module.

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// ProfValueType is a decoded sample type.
type ProfValueType struct {
	Type, Unit string
}

// ProfSample is a decoded sample: the resolved function-name stack
// (leaf first) and the sample values.
type ProfSample struct {
	Stack  []string
	Values []int64
	// Labels holds string labels; NumLabels numeric ones.
	Labels    map[string]string
	NumLabels map[string]int64
}

// Profile is the decoded subset of a pprof profile.
type Profile struct {
	SampleTypes []ProfValueType
	Samples     []ProfSample
	Comments    []string
}

// ReadPprof decodes a (gzipped or raw) pprof protobuf profile.
func ReadPprof(r io.Reader) (*Profile, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(raw) >= 2 && raw[0] == 0x1f && raw[1] == 0x8b {
		gz, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("attrib: pprof gzip: %w", err)
		}
		if raw, err = io.ReadAll(gz); err != nil {
			return nil, fmt.Errorf("attrib: pprof gunzip: %w", err)
		}
	}
	return parseProfile(raw)
}

// wire-format primitives

type protoReader struct{ b []byte }

func (p *protoReader) empty() bool { return len(p.b) == 0 }

func (p *protoReader) varint() (uint64, error) {
	var v uint64
	for i := 0; i < len(p.b) && i < 10; i++ {
		v |= uint64(p.b[i]&0x7f) << (7 * i)
		if p.b[i] < 0x80 {
			p.b = p.b[i+1:]
			return v, nil
		}
	}
	return 0, fmt.Errorf("attrib: truncated varint")
}

// field reads the next (field number, wire type, payload). Varint fields
// return the value in n; length-delimited fields return the bytes.
func (p *protoReader) field() (num int, n uint64, body []byte, err error) {
	tag, err := p.varint()
	if err != nil {
		return 0, 0, nil, err
	}
	num = int(tag >> 3)
	switch tag & 7 {
	case 0:
		n, err = p.varint()
	case 1:
		if len(p.b) < 8 {
			return 0, 0, nil, fmt.Errorf("attrib: truncated fixed64")
		}
		p.b = p.b[8:]
	case 2:
		var ln uint64
		if ln, err = p.varint(); err != nil {
			return
		}
		if uint64(len(p.b)) < ln {
			return 0, 0, nil, fmt.Errorf("attrib: truncated bytes field")
		}
		body, p.b = p.b[:ln], p.b[ln:]
	case 5:
		if len(p.b) < 4 {
			return 0, 0, nil, fmt.Errorf("attrib: truncated fixed32")
		}
		p.b = p.b[4:]
	default:
		return 0, 0, nil, fmt.Errorf("attrib: unsupported wire type %d", tag&7)
	}
	return
}

// repeatedInts decodes a repeated varint field that may arrive packed
// (body) or one-at-a-time (n).
func repeatedInts(dst []int64, n uint64, body []byte) ([]int64, error) {
	if body == nil {
		return append(dst, int64(n)), nil
	}
	pr := &protoReader{b: body}
	for !pr.empty() {
		v, err := pr.varint()
		if err != nil {
			return nil, err
		}
		dst = append(dst, int64(v))
	}
	return dst, nil
}

type rawValueType struct{ typ, unit int64 }
type rawLabel struct{ key, str, num int64 }
type rawSample struct {
	locs   []int64
	values []int64
	labels []rawLabel
}
type rawLocation struct {
	id, fn int64 // first line's function
}
type rawFunction struct{ id, name int64 }

func parseProfile(raw []byte) (*Profile, error) {
	pr := &protoReader{b: raw}
	var (
		types    []rawValueType
		samples  []rawSample
		locs     []rawLocation
		funcs    []rawFunction
		strs     []string
		comments []int64
	)
	for !pr.empty() {
		num, n, body, err := pr.field()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1:
			vt, err := parseValueType(body)
			if err != nil {
				return nil, err
			}
			types = append(types, vt)
		case 2:
			s, err := parseSample(body)
			if err != nil {
				return nil, err
			}
			samples = append(samples, s)
		case 4:
			l, err := parseLocation(body)
			if err != nil {
				return nil, err
			}
			locs = append(locs, l)
		case 5:
			f, err := parseFunction(body)
			if err != nil {
				return nil, err
			}
			funcs = append(funcs, f)
		case 6:
			strs = append(strs, string(body))
		case 13:
			if comments, err = repeatedInts(comments, n, body); err != nil {
				return nil, err
			}
		default:
			_ = n // mapping, period: skipped
		}
	}
	// Dangling string references are a hard error: `go tool pprof` rejects
	// such profiles, so the golden tests must too.
	var strErr error
	str := func(i int64) string {
		if i < 0 || i >= int64(len(strs)) {
			strErr = fmt.Errorf("attrib: pprof string index %d out of range (table has %d entries)", i, len(strs))
			return ""
		}
		return strs[i]
	}
	fnName := map[int64]string{}
	for _, f := range funcs {
		fnName[f.id] = str(f.name)
	}
	locName := map[int64]string{}
	for _, l := range locs {
		locName[l.id] = fnName[l.fn]
	}
	out := &Profile{}
	for _, t := range types {
		out.SampleTypes = append(out.SampleTypes, ProfValueType{Type: str(t.typ), Unit: str(t.unit)})
	}
	for _, s := range samples {
		ps := ProfSample{
			Values:    s.values,
			Labels:    map[string]string{},
			NumLabels: map[string]int64{},
		}
		for _, id := range s.locs {
			ps.Stack = append(ps.Stack, locName[id])
		}
		for _, lb := range s.labels {
			if lb.str != 0 {
				ps.Labels[str(lb.key)] = str(lb.str)
			} else {
				ps.NumLabels[str(lb.key)] = lb.num
			}
		}
		out.Samples = append(out.Samples, ps)
	}
	for _, c := range comments {
		out.Comments = append(out.Comments, str(c))
	}
	if strErr != nil {
		return nil, strErr
	}
	return out, nil
}

func parseValueType(body []byte) (rawValueType, error) {
	var vt rawValueType
	pr := &protoReader{b: body}
	for !pr.empty() {
		num, n, _, err := pr.field()
		if err != nil {
			return vt, err
		}
		switch num {
		case 1:
			vt.typ = int64(n)
		case 2:
			vt.unit = int64(n)
		}
	}
	return vt, nil
}

func parseSample(body []byte) (rawSample, error) {
	var s rawSample
	pr := &protoReader{b: body}
	for !pr.empty() {
		num, n, b, err := pr.field()
		if err != nil {
			return s, err
		}
		switch num {
		case 1:
			if s.locs, err = repeatedInts(s.locs, n, b); err != nil {
				return s, err
			}
		case 2:
			if s.values, err = repeatedInts(s.values, n, b); err != nil {
				return s, err
			}
		case 3:
			lb, err := parseLabel(b)
			if err != nil {
				return s, err
			}
			s.labels = append(s.labels, lb)
		}
	}
	return s, nil
}

func parseLabel(body []byte) (rawLabel, error) {
	var lb rawLabel
	pr := &protoReader{b: body}
	for !pr.empty() {
		num, n, _, err := pr.field()
		if err != nil {
			return lb, err
		}
		switch num {
		case 1:
			lb.key = int64(n)
		case 2:
			lb.str = int64(n)
		case 3:
			lb.num = int64(n)
		}
	}
	return lb, nil
}

func parseLocation(body []byte) (rawLocation, error) {
	var l rawLocation
	pr := &protoReader{b: body}
	for !pr.empty() {
		num, n, b, err := pr.field()
		if err != nil {
			return l, err
		}
		switch num {
		case 1:
			l.id = int64(n)
		case 4:
			if l.fn == 0 {
				lpr := &protoReader{b: b}
				for !lpr.empty() {
					lnum, ln, _, err := lpr.field()
					if err != nil {
						return l, err
					}
					if lnum == 1 {
						l.fn = int64(ln)
					}
				}
			}
		}
	}
	return l, nil
}

func parseFunction(body []byte) (rawFunction, error) {
	var f rawFunction
	pr := &protoReader{b: body}
	for !pr.empty() {
		num, n, _, err := pr.field()
		if err != nil {
			return f, err
		}
		switch num {
		case 1:
			f.id = int64(n)
		case 2:
			f.name = int64(n)
		}
	}
	return f, nil
}
