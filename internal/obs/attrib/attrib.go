// Package attrib attributes simulated page faults to the symbols of an
// image layout: the compilation units of .text and the objects of
// .svm_heap (plus the native tail and the header page). Where the osim
// layer counts faults per *section*, this package answers the layout
// debugging question per-symbol fault attribution exists for in
// profile-guided layout work (Hoag et al.; Newell & Pupyrev): *which* CU
// or heap object still faults cold, in what order, at what I/O cost, and
// how many bytes the fault-around windows dragged in for nothing.
//
// The pieces: an Index resolves pages to the symbols overlapping them; a
// Recorder implements osim.FaultObserver and folds every fault into a
// per-symbol table plus a per-page heat map; a Table is the serializable
// result; Diff compares two tables (baseline vs optimized layout) into
// eliminated / survived / new cold symbols. Exporters for the table live
// in pprof.go (pprof protobuf) and trace.go (Chrome trace-event JSON).
package attrib

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"nimage/internal/osim"
)

// TableSchema versions the serialized attribution document.
const TableSchema = "nimage.attrib/v1"

// Symbol kinds.
const (
	KindCU     = "cu"     // compilation unit in .text
	KindObject = "object" // heap-snapshot object in .svm_heap
	KindNative = "native" // statically linked native-library tail of .text
	KindHeader = "header" // the file header page
)

// Symbol is one named byte range of the image file.
type Symbol struct {
	// Name identifies the symbol: the CU root's method signature, or a
	// stable object name ("hub:Class", "meta:Class", "Class#3", ...).
	Name string `json:"name"`
	// Type groups symbols: the declaring class of a CU, the object's type
	// name. It becomes the middle frame of the pprof location stack.
	Type string `json:"type,omitempty"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Section is the section containing the symbol ("" for the header).
	Section string `json:"section,omitempty"`
	// Off and Len delimit the symbol's bytes in the file.
	Off int64 `json:"off"`
	Len int64 `json:"len"`
}

// Index resolves file pages against a layout's symbols. Symbols are kept
// sorted by offset; pages resolve with a binary search, so the per-fault
// cost is logarithmic in the symbol count.
type Index struct {
	FileSize int64
	Sections []osim.Section
	syms     []Symbol
	// maxEnd[i] is the largest end offset among syms[0..i]. Plain end
	// offsets are not monotonic (a long symbol may be followed by short
	// ones), so the page lookup binary-searches this prefix-max instead.
	maxEnd []int64
}

// NewIndex builds an index over the given symbols (copied, then sorted by
// offset). Symbols may share pages but must not overlap byte ranges.
func NewIndex(fileSize int64, sections []osim.Section, syms []Symbol) *Index {
	ix := &Index{
		FileSize: fileSize,
		Sections: append([]osim.Section(nil), sections...),
		syms:     append([]Symbol(nil), syms...),
	}
	sort.SliceStable(ix.syms, func(i, j int) bool { return ix.syms[i].Off < ix.syms[j].Off })
	ix.maxEnd = make([]int64, len(ix.syms))
	for i, s := range ix.syms {
		end := s.Off + s.Len
		if i > 0 && ix.maxEnd[i-1] > end {
			end = ix.maxEnd[i-1]
		}
		ix.maxEnd[i] = end
	}
	return ix
}

// Symbols returns the indexed symbols in offset order.
func (ix *Index) Symbols() []Symbol { return ix.syms }

// Pages returns the number of pages the indexed file spans.
func (ix *Index) Pages() int {
	return int((ix.FileSize + osim.PageSize - 1) / osim.PageSize)
}

// SymbolsOnPage returns the indices (into Symbols) of every symbol
// overlapping the page — the set of CUs or objects a fault on that page
// pulls in.
func (ix *Index) SymbolsOnPage(page int) []int {
	lo := int64(page) * osim.PageSize
	hi := lo + osim.PageSize
	// First position whose prefix-max end offset reaches past the page
	// start; from there, scan while symbols start before the page end and
	// keep the ones actually overlapping.
	i := sort.Search(len(ix.syms), func(i int) bool { return ix.maxEnd[i] > lo })
	var out []int
	for ; i < len(ix.syms) && ix.syms[i].Off < hi; i++ {
		s := ix.syms[i]
		if s.Len > 0 && s.Off+s.Len > lo {
			out = append(out, i)
		}
	}
	return out
}

// SymbolAt returns the index (into Symbols) of the symbol containing the
// byte offset, or -1 when no symbol covers it. Symbols never overlap, so
// the containing symbol is unique.
func (ix *Index) SymbolAt(off int64) int {
	i := sort.Search(len(ix.syms), func(i int) bool { return ix.maxEnd[i] > off })
	for ; i < len(ix.syms) && ix.syms[i].Off <= off; i++ {
		s := ix.syms[i]
		if s.Len > 0 && s.Off+s.Len > off {
			return i
		}
	}
	return -1
}

// SectionName returns the name the index uses for a section index of an
// osim.FaultEvent ("<other>" past the table, matching osim's catch-all).
func (ix *Index) SectionName(idx int) string {
	if idx >= 0 && idx < len(ix.Sections) {
		return ix.Sections[idx].Name
	}
	return "<other>"
}

// SymbolFaults aggregates the faults attributed to one symbol.
type SymbolFaults struct {
	Symbol
	// Faults counts faulted pages overlapping the symbol (major+minor).
	Faults int64 `json:"faults"`
	Major  int64 `json:"major"`
	Minor  int64 `json:"minor"`
	// IONanos is the simulated device time of the major faults on the
	// symbol's pages. A page shared by several symbols charges each of
	// them, so I/O sums over symbols exceed the per-section device time.
	IONanos int64 `json:"io_nanos"`
	// FirstOrdinal is the 1-based position of the symbol's first fault in
	// the run's fault stream (0 = the symbol never faulted) — the symbol's
	// place in the cold-start order.
	FirstOrdinal int64 `json:"first_ordinal,omitempty"`
	// ResidentUnusedBytes counts the symbol's bytes on pages that were
	// paged in (fault-around / readahead) but never faulted — the waste a
	// compact layout converts into useful prefetch.
	ResidentUnusedBytes int64 `json:"resident_unused_bytes,omitempty"`
	// Evicted counts evictions of pages overlapping the symbol (any
	// cause); Refaults counts major faults that brought such a page back
	// after a pressure or budget eviction — together they name the
	// symbols churning through the page cache in serve mode.
	Evicted  int64 `json:"evicted,omitempty"`
	Refaults int64 `json:"refaults,omitempty"`
}

// SectionTotal is the attribution stream's per-section reconciliation
// record: it must exactly match osim's SectionFaults counters.
type SectionTotal struct {
	Section string `json:"section"`
	Major   int64  `json:"major"`
	Minor   int64  `json:"minor"`
	IONanos int64  `json:"io_nanos"`
	// Evicted counts pages of the section evicted from the page cache
	// (reconciles with osim's File.EvictionsBySection); Refaults counts
	// major faults re-reading a pressure- or budget-evicted page.
	Evicted  int64 `json:"evicted,omitempty"`
	Refaults int64 `json:"refaults,omitempty"`
}

// Total returns major+minor.
func (s SectionTotal) Total() int64 { return s.Major + s.Minor }

// PageHeat is one faulted page of the heat map.
type PageHeat struct {
	Page    int64  `json:"page"`
	Count   int64  `json:"count"`
	Major   int64  `json:"major"`
	Section string `json:"section"`
}

// Table is the serializable attribution result of one (or several merged)
// cold runs.
type Table struct {
	Schema string `json:"schema"`
	// Workload and Layout describe what was measured ("Bounce", "cu").
	Workload string `json:"workload,omitempty"`
	Layout   string `json:"layout,omitempty"`
	FileSize int64  `json:"file_size"`
	Pages    int    `json:"pages"`
	// Runs counts the cold runs merged into the table.
	Runs int `json:"runs"`
	// Sections reconciles with osim's per-section fault counters.
	Sections []SectionTotal `json:"sections"`
	// Symbols lists every symbol that faulted or carries fault-around
	// waste, ranked by fault count (then I/O time, then file offset).
	Symbols []SymbolFaults `json:"symbols"`
	// Heat is the per-page fault heat map (faulted pages only).
	Heat []PageHeat `json:"heat,omitempty"`
}

// Section returns the named section total (zero value if absent).
func (t *Table) Section(name string) SectionTotal {
	for _, s := range t.Sections {
		if s.Section == name {
			return s
		}
	}
	return SectionTotal{Section: name}
}

// TotalFaults sums the per-section totals (every fault lands in exactly
// one section bucket, so this equals the mapping's fault count).
func (t *Table) TotalFaults() int64 {
	var n int64
	for _, s := range t.Sections {
		n += s.Total()
	}
	return n
}

// Recorder folds a mapping's fault stream into an attribution table. It
// implements osim.FaultObserver; attach it to a Mapping before the first
// touch. Not safe for concurrent use (one recorder per mapping).
type Recorder struct {
	ix        *Index
	counts    []SymbolFaults // parallel to ix.syms
	bySection map[int]*SectionTotal
	heat      []PageHeat // indexed by page; Count==0 means never faulted
	// evictedPage mirrors osim's per-page re-fault tracking: set when a
	// page is evicted under pressure or budget, cleared by DropCaches.
	evictedPage []bool
	ordinal     int64
	finished    bool
}

// NewRecorder creates a recorder over the index.
func NewRecorder(ix *Index) *Recorder {
	r := &Recorder{
		ix:          ix,
		counts:      make([]SymbolFaults, len(ix.syms)),
		bySection:   make(map[int]*SectionTotal),
		heat:        make([]PageHeat, ix.Pages()),
		evictedPage: make([]bool, ix.Pages()),
	}
	for i := range r.counts {
		r.counts[i].Symbol = ix.syms[i]
	}
	return r
}

// OnFault attributes one fault: the per-section totals use the event's own
// section classification (so they reconcile with osim's counters by
// construction — asserted by tests, not assumed), and the faulted page's
// counts and I/O charge every symbol overlapping it.
func (r *Recorder) OnFault(ev osim.FaultEvent) {
	r.ordinal++
	st := r.bySection[ev.Section]
	if st == nil {
		st = &SectionTotal{Section: r.ix.SectionName(ev.Section)}
		r.bySection[ev.Section] = st
	}
	if ev.Major {
		st.Major++
	} else {
		st.Minor++
	}
	st.IONanos += ev.IONanos
	if ev.Page >= 0 && ev.Page < len(r.heat) {
		h := &r.heat[ev.Page]
		h.Page = int64(ev.Page)
		h.Count++
		if ev.Major {
			h.Major++
		}
		h.Section = st.Section
	}
	refault := ev.Major && ev.Page >= 0 && ev.Page < len(r.evictedPage) && r.evictedPage[ev.Page]
	if refault {
		st.Refaults++
	}
	for _, si := range r.ix.SymbolsOnPage(ev.Page) {
		c := &r.counts[si]
		c.Faults++
		if ev.Major {
			c.Major++
		} else {
			c.Minor++
		}
		if refault {
			c.Refaults++
		}
		c.IONanos += ev.IONanos
		if c.FirstOrdinal == 0 {
			c.FirstOrdinal = r.ordinal
		}
	}
}

// OnEvict attributes one page eviction (the Recorder also implements
// osim.EvictionObserver; attach it as the mapping's EvictObserver). The
// per-section eviction totals reconcile with the file's counters by
// construction; per-symbol counts charge every symbol on the page.
// Pressure and budget evictions arm the page's re-fault tracking;
// DropCaches (the deliberate cold-start reset) disarms it, mirroring the
// osim model.
func (r *Recorder) OnEvict(ev osim.EvictionEvent) {
	st := r.bySection[ev.Section]
	if st == nil {
		st = &SectionTotal{Section: r.ix.SectionName(ev.Section)}
		r.bySection[ev.Section] = st
	}
	st.Evicted++
	if ev.Page >= 0 && ev.Page < len(r.evictedPage) {
		r.evictedPage[ev.Page] = ev.Cause != osim.EvictDrop
	}
	for _, si := range r.ix.SymbolsOnPage(ev.Page) {
		r.counts[si].Evicted++
	}
}

// Finish computes fault-around waste from the mapping's final page states
// (osim.Mapping.PageClasses): for every page that was paged in but never
// faulted, each overlapping symbol is charged its byte overlap with the
// page. Call once, after the run.
func (r *Recorder) Finish(states []osim.PageState) {
	if r.finished {
		return
	}
	r.finished = true
	for p, st := range states {
		if st != osim.PageMappedNoFault {
			continue
		}
		lo := int64(p) * osim.PageSize
		hi := lo + osim.PageSize
		for _, si := range r.ix.SymbolsOnPage(p) {
			s := &r.counts[si]
			a, b := s.Off, s.Off+s.Len
			if a < lo {
				a = lo
			}
			if b > hi {
				b = hi
			}
			if b > a {
				s.ResidentUnusedBytes += b - a
			}
		}
	}
}

// Table assembles the attribution table: symbols with any faults or waste,
// ranked by fault count desc, then I/O desc, then offset.
func (r *Recorder) Table() *Table {
	t := &Table{
		Schema:   TableSchema,
		FileSize: r.ix.FileSize,
		Pages:    r.ix.Pages(),
		Runs:     1,
	}
	var secIdxs []int
	for i := range r.bySection {
		secIdxs = append(secIdxs, i)
	}
	sort.Ints(secIdxs)
	for _, i := range secIdxs {
		t.Sections = append(t.Sections, *r.bySection[i])
	}
	for i := range r.counts {
		c := r.counts[i]
		if c.Faults > 0 || c.ResidentUnusedBytes > 0 || c.Evicted > 0 {
			t.Symbols = append(t.Symbols, c)
		}
	}
	rankSymbols(t.Symbols)
	for p := range r.heat {
		if r.heat[p].Count > 0 {
			t.Heat = append(t.Heat, r.heat[p])
		}
	}
	return t
}

func rankSymbols(syms []SymbolFaults) {
	sort.SliceStable(syms, func(i, j int) bool {
		a, b := syms[i], syms[j]
		if a.Faults != b.Faults {
			return a.Faults > b.Faults
		}
		if a.IONanos != b.IONanos {
			return a.IONanos > b.IONanos
		}
		return a.Off < b.Off
	})
}

// Merge combines attribution tables — e.g. the per-iteration tables of one
// entry — by symbol name: counts add, first-fault ordinals keep the
// smallest nonzero value, heat maps add per page. Nil tables are skipped.
// Symbol offsets are taken from the first table naming the symbol (layouts
// of merged tables should agree; merging different layouts is meaningful
// only for the name-keyed counts).
func Merge(tables ...*Table) *Table {
	out := &Table{Schema: TableSchema}
	symIdx := make(map[string]int)
	secIdx := make(map[string]int)
	heatIdx := make(map[int64]int)
	for _, t := range tables {
		if t == nil {
			continue
		}
		if out.Workload == "" {
			out.Workload, out.Layout = t.Workload, t.Layout
		}
		if t.FileSize > out.FileSize {
			out.FileSize = t.FileSize
		}
		if t.Pages > out.Pages {
			out.Pages = t.Pages
		}
		out.Runs += t.Runs
		for _, s := range t.Sections {
			i, ok := secIdx[s.Section]
			if !ok {
				secIdx[s.Section] = len(out.Sections)
				out.Sections = append(out.Sections, s)
				continue
			}
			out.Sections[i].Major += s.Major
			out.Sections[i].Minor += s.Minor
			out.Sections[i].IONanos += s.IONanos
			out.Sections[i].Evicted += s.Evicted
			out.Sections[i].Refaults += s.Refaults
		}
		for _, s := range t.Symbols {
			i, ok := symIdx[s.Name]
			if !ok {
				symIdx[s.Name] = len(out.Symbols)
				out.Symbols = append(out.Symbols, s)
				continue
			}
			m := &out.Symbols[i]
			m.Faults += s.Faults
			m.Major += s.Major
			m.Minor += s.Minor
			m.IONanos += s.IONanos
			m.ResidentUnusedBytes += s.ResidentUnusedBytes
			m.Evicted += s.Evicted
			m.Refaults += s.Refaults
			if s.FirstOrdinal > 0 && (m.FirstOrdinal == 0 || s.FirstOrdinal < m.FirstOrdinal) {
				m.FirstOrdinal = s.FirstOrdinal
			}
		}
		for _, h := range t.Heat {
			i, ok := heatIdx[h.Page]
			if !ok {
				heatIdx[h.Page] = len(out.Heat)
				out.Heat = append(out.Heat, h)
				continue
			}
			out.Heat[i].Count += h.Count
			out.Heat[i].Major += h.Major
		}
	}
	sort.Slice(out.Sections, func(i, j int) bool { return out.Sections[i].Section < out.Sections[j].Section })
	rankSymbols(out.Symbols)
	sort.Slice(out.Heat, func(i, j int) bool { return out.Heat[i].Page < out.Heat[j].Page })
	return out
}

// WriteTable serializes the table as indented JSON.
func WriteTable(w io.Writer, t *Table) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("attrib: encoding table: %w", err)
	}
	return nil
}

// ReadTable deserializes a table written by WriteTable.
func ReadTable(r io.Reader) (*Table, error) {
	var t Table
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("attrib: decoding table: %w", err)
	}
	if t.Schema != TableSchema {
		return nil, fmt.Errorf("attrib: unsupported schema %q (want %q)", t.Schema, TableSchema)
	}
	return &t, nil
}
