package attrib

// Chrome trace-event export: the obs registry's spans and the simulated
// fault stream rendered as a trace JSON that chrome://tracing and Perfetto
// load directly. Spans from the snapshot go on one "spans" track; each
// fault becomes an instant event on a per-section track.
//
// The registry records span durations and sequence numbers but no wall
// clock (runs are simulated), so the time axis is synthetic: spans are
// laid out back to back in sequence order, and fault instants sit at the
// cumulative attributed I/O time — the device-time axis the startup
// simulation actually models.

import (
	"encoding/json"
	"fmt"
	"io"

	"nimage/internal/obs"
)

// FaultTimeline is the obs timeline name the trace exporter reads fault
// events from (written by osim.Mapping).
const FaultTimeline = "osim.faults"

type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

const (
	tracePid     = 1
	spanTid      = 1
	sectionTid0  = 2 // per-section fault tracks start here
	nanosPerTick = 1e3
)

func threadName(tid int, name string) traceEvent {
	return traceEvent{
		Name: "thread_name", Ph: "M", Pid: tracePid, Tid: tid,
		Args: map[string]any{"name": name},
	}
}

// WriteChromeTrace writes snap's spans and fault timeline as Chrome
// trace-event JSON. t supplies the workload/layout names for the process
// title and may be nil.
func WriteChromeTrace(w io.Writer, snap *obs.Snapshot, t *Table) error {
	tf := traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}

	proc := "nimage"
	if t != nil && t.Workload != "" {
		proc = fmt.Sprintf("nimage %s (%s)", t.Workload, t.Layout)
	}
	tf.TraceEvents = append(tf.TraceEvents,
		traceEvent{Name: "process_name", Ph: "M", Pid: tracePid, Tid: spanTid,
			Args: map[string]any{"name": proc}},
		threadName(spanTid, "spans"),
	)

	// Spans back to back in sequence order (Snapshot sorts them by seq).
	var cursor float64
	if snap != nil {
		for _, sp := range snap.Spans {
			dur := float64(sp.DurationNanos) / nanosPerTick
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: sp.Name, Ph: "X", Cat: "span",
				Ts: cursor, Dur: dur, Pid: tracePid, Tid: spanTid,
			})
			cursor += dur
		}
	}

	// Fault instants on per-section tracks. The timeline label is the
	// section name; tracks are assigned in first-encounter order.
	if snap != nil {
		if tl := snap.Timeline(FaultTimeline); tl != nil {
			col := map[string]int{}
			for i, f := range tl.Fields {
				col[f] = i
			}
			val := func(ev obs.TimelineEvent, field string) int64 {
				if i, ok := col[field]; ok && i < len(ev.Values) {
					return ev.Values[i]
				}
				return 0
			}
			tids := map[string]int{}
			var ioCursor int64
			for _, ev := range tl.Events {
				tid, ok := tids[ev.Label]
				if !ok {
					tid = sectionTid0 + len(tids)
					tids[ev.Label] = tid
					tf.TraceEvents = append(tf.TraceEvents,
						threadName(tid, "faults "+ev.Label))
				}
				ioCursor += val(ev, "io_nanos")
				name := "minor fault"
				if val(ev, "major") != 0 {
					name = "major fault"
				}
				tf.TraceEvents = append(tf.TraceEvents, traceEvent{
					Name: name, Ph: "i", Cat: "fault", S: "t",
					Ts: float64(ioCursor) / nanosPerTick, Pid: tracePid, Tid: tid,
					Args: map[string]any{
						"offset":   val(ev, "offset"),
						"page":     val(ev, "page"),
						"io_nanos": val(ev, "io_nanos"),
					},
				})
			}
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(&tf); err != nil {
		return fmt.Errorf("attrib: writing chrome trace: %w", err)
	}
	return nil
}
