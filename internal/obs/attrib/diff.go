package attrib

import "sort"

// Diff compares two attribution tables — typically an identity layout
// against a profile-guided one — into the "why is this page still cold"
// workflow: which symbols' faults the reordering eliminated, which
// survived it, and which are new.

// DiffEntry is one symbol's before/after fault record.
type DiffEntry struct {
	Name    string `json:"name"`
	Kind    string `json:"kind,omitempty"`
	Section string `json:"section,omitempty"`
	// Baseline / Optimized are the fault counts in each table.
	Baseline  int64 `json:"baseline"`
	Optimized int64 `json:"optimized"`
	// IODeltaNanos is optimized minus baseline attributed I/O time
	// (negative = the reordering saved device time on this symbol).
	IODeltaNanos int64 `json:"io_delta_nanos"`
}

// Delta returns optimized minus baseline faults.
func (d DiffEntry) Delta() int64 { return d.Optimized - d.Baseline }

// Diff is the symbol-level comparison of two tables.
type Diff struct {
	BaselineLayout  string `json:"baseline_layout,omitempty"`
	OptimizedLayout string `json:"optimized_layout,omitempty"`
	// Eliminated: faulted in the baseline, fault-free in the optimized
	// layout (sorted by baseline faults desc).
	Eliminated []DiffEntry `json:"eliminated"`
	// Survived: faulted in both (sorted by optimized faults desc) — the
	// residual cold set the next strategy iteration should look at.
	Survived []DiffEntry `json:"survived"`
	// New: fault-free in the baseline, faulting in the optimized layout
	// (regressions; sorted by optimized faults desc).
	New []DiffEntry `json:"new"`
	// BaselineFaults / OptimizedFaults are the tables' per-section grand
	// totals.
	BaselineFaults  int64 `json:"baseline_faults"`
	OptimizedFaults int64 `json:"optimized_faults"`
}

// DiffTables computes the symbol diff of two tables, keyed by symbol name.
// Symbol names are chosen to be stable across builds (CU signatures,
// per-type object ordinals in snapshot encounter order), so the same
// logical symbol lines up on both sides even though its file offset moved.
func DiffTables(baseline, optimized *Table) *Diff {
	d := &Diff{
		BaselineLayout:  baseline.Layout,
		OptimizedLayout: optimized.Layout,
		BaselineFaults:  baseline.TotalFaults(),
		OptimizedFaults: optimized.TotalFaults(),
	}
	opt := make(map[string]SymbolFaults, len(optimized.Symbols))
	for _, s := range optimized.Symbols {
		opt[s.Name] = s
	}
	seen := make(map[string]bool, len(baseline.Symbols))
	for _, b := range baseline.Symbols {
		seen[b.Name] = true
		o := opt[b.Name]
		e := DiffEntry{
			Name: b.Name, Kind: b.Kind, Section: b.Section,
			Baseline: b.Faults, Optimized: o.Faults,
			IODeltaNanos: o.IONanos - b.IONanos,
		}
		switch {
		case b.Faults > 0 && o.Faults == 0:
			d.Eliminated = append(d.Eliminated, e)
		case b.Faults > 0 && o.Faults > 0:
			d.Survived = append(d.Survived, e)
		case b.Faults == 0 && o.Faults > 0:
			d.New = append(d.New, e)
		}
	}
	for _, o := range optimized.Symbols {
		if seen[o.Name] || o.Faults == 0 {
			continue
		}
		d.New = append(d.New, DiffEntry{
			Name: o.Name, Kind: o.Kind, Section: o.Section,
			Optimized: o.Faults, IODeltaNanos: o.IONanos,
		})
	}
	sortDiff(d.Eliminated, func(e DiffEntry) int64 { return e.Baseline })
	sortDiff(d.Survived, func(e DiffEntry) int64 { return e.Optimized })
	sortDiff(d.New, func(e DiffEntry) int64 { return e.Optimized })
	return d
}

func sortDiff(es []DiffEntry, key func(DiffEntry) int64) {
	sort.SliceStable(es, func(i, j int) bool {
		ka, kb := key(es[i]), key(es[j])
		if ka != kb {
			return ka > kb
		}
		return es[i].Name < es[j].Name
	})
}
