package attrib

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"nimage/internal/obs"
	"nimage/internal/osim"
)

func profTable() *Table {
	return &Table{
		Schema: TableSchema, Workload: "Bounce", Layout: "cu",
		FileSize: 16384, Pages: 4, Runs: 1,
		Sections: []SectionTotal{
			{Section: ".text", Major: 2, Minor: 1, IONanos: 1500},
			{Section: ".svm_heap", Major: 1, IONanos: 500},
		},
		Symbols: []SymbolFaults{
			{
				Symbol: Symbol{Name: "A.run(0)", Type: "A", Kind: KindCU, Section: ".text", Off: 64, Len: 6000},
				Faults: 2, Major: 2, IONanos: 1500, FirstOrdinal: 1,
			},
			{
				Symbol: Symbol{Name: "O2#0", Type: "O2", Kind: KindObject, Section: ".svm_heap", Off: 8292, Len: 8000},
				Faults: 1, Major: 1, IONanos: 500, FirstOrdinal: 3, ResidentUnusedBytes: 4004,
			},
			{
				// Type == Name: the middle frame collapses away.
				Symbol: Symbol{Name: "B", Type: "B", Kind: KindCU, Section: ".text", Off: 6064, Len: 2128},
				Faults: 1, Minor: 1, FirstOrdinal: 2,
			},
			{
				// Fault-free symbols carry no samples even with waste.
				Symbol:              Symbol{Name: "cold", Kind: KindObject, Section: ".svm_heap", Off: 16000, Len: 100},
				ResidentUnusedBytes: 100,
			},
		},
	}
}

// Golden-shape test: encode, decode with the independent reader, and check
// the sample types, stacks, values, and labels survive the round trip.
func TestPprofRoundTrip(t *testing.T) {
	tab := profTable()
	var buf bytes.Buffer
	if err := WritePprof(&buf, tab); err != nil {
		t.Fatal(err)
	}
	if b := buf.Bytes(); len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
		t.Fatal("profile not gzipped")
	}
	p, err := ReadPprof(&buf)
	if err != nil {
		t.Fatal(err)
	}

	wantTypes := []ProfValueType{
		{Type: "faults", Unit: "count"},
		{Type: "major_faults", Unit: "count"},
		{Type: "io", Unit: "nanoseconds"},
	}
	if !reflect.DeepEqual(p.SampleTypes, wantTypes) {
		t.Errorf("sample types = %+v, want %+v", p.SampleTypes, wantTypes)
	}
	if len(p.Samples) != 3 {
		t.Fatalf("samples = %d, want 3 (fault-free symbol must not sample)", len(p.Samples))
	}

	byLeaf := map[string]ProfSample{}
	for _, s := range p.Samples {
		if len(s.Stack) == 0 {
			t.Fatalf("empty stack in %+v", s)
		}
		byLeaf[s.Stack[0]] = s
	}
	a := byLeaf["A.run(0)"]
	if !reflect.DeepEqual(a.Stack, []string{"A.run(0)", "A", ".text"}) {
		t.Errorf("A stack = %v", a.Stack)
	}
	if !reflect.DeepEqual(a.Values, []int64{2, 2, 1500}) {
		t.Errorf("A values = %v", a.Values)
	}
	if a.Labels["kind"] != KindCU || a.NumLabels["first_fault_ordinal"] != 1 {
		t.Errorf("A labels = %+v / %+v", a.Labels, a.NumLabels)
	}
	b := byLeaf["B"]
	if !reflect.DeepEqual(b.Stack, []string{"B", ".text"}) {
		t.Errorf("B stack must collapse same-name type frame: %v", b.Stack)
	}
	o2 := byLeaf["O2#0"]
	if !reflect.DeepEqual(o2.Stack, []string{"O2#0", "O2", ".svm_heap"}) {
		t.Errorf("O2 stack = %v", o2.Stack)
	}
	if o2.NumLabels["resident_unused"] != 4004 {
		t.Errorf("O2 labels = %+v", o2.NumLabels)
	}

	// Grand totals across samples match the table's symbol counts.
	var faults, major, io int64
	for _, s := range p.Samples {
		faults += s.Values[0]
		major += s.Values[1]
		io += s.Values[2]
	}
	if faults != 4 || major != 3 || io != 2000 {
		t.Errorf("totals = %d/%d/%d, want 4/3/2000", faults, major, io)
	}
	// The layout comment is interned after most of the profile is built;
	// it must still resolve against the emitted string table.
	if !reflect.DeepEqual(p.Comments, []string{"layout: cu"}) {
		t.Errorf("comments = %v, want [layout: cu]", p.Comments)
	}
}

func TestPprofDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WritePprof(&a, profTable()); err != nil {
		t.Fatal(err)
	}
	if err := WritePprof(&b, profTable()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("pprof export not byte-deterministic")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := obs.NewRegistry()
	sp := r.StartSpan("build")
	sp.End()
	tl := r.Timeline(FaultTimeline, "offset", "page", "major", "io_nanos", "section")
	tl.Record(".text", 0, 0, 1, 1000, 0)
	tl.Record(".text", 4096, 1, 0, 0, 0)
	tl.Record(".svm_heap", 8192, 2, 1, 500, 1)
	snap := r.Snapshot()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, snap, profTable()); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var spans, instants, threads int
	tracks := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		switch ev["ph"] {
		case "X":
			spans++
			if ev["name"] != "build" {
				t.Errorf("span name = %v", ev["name"])
			}
		case "i":
			instants++
		case "M":
			threads++
			if args, ok := ev["args"].(map[string]any); ok {
				if n, ok := args["name"].(string); ok {
					tracks[n] = true
				}
			}
		}
	}
	if spans != 1 || instants != 3 {
		t.Errorf("spans = %d, instants = %d, want 1/3", spans, instants)
	}
	if !tracks["faults .text"] || !tracks["faults .svm_heap"] {
		t.Errorf("per-section tracks missing: %v", tracks)
	}

	// Nil snapshot and table still produce a loadable (metadata-only) file.
	buf.Reset()
	if err := WriteChromeTrace(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
}

// Guard: the recorder really does plug into osim as a FaultObserver.
var _ osim.FaultObserver = (*Recorder)(nil)
