package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestParseSLOTargets(t *testing.T) {
	got, err := ParseSLOTargets("p50=100us, p99=2ms ,p99.9=10ms")
	if err != nil {
		t.Fatal(err)
	}
	want := []SLOTarget{
		{Quantile: 0.50, BudgetNanos: 100e3},
		{Quantile: 0.99, BudgetNanos: 2e6},
		{Quantile: 0.999, BudgetNanos: 10e6},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d targets, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i].Quantile-want[i].Quantile) > 1e-12 ||
			got[i].BudgetNanos != want[i].BudgetNanos {
			t.Errorf("target %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// String renders back in flag syntax.
	if s := want[2].String(); s != "p99.9=10ms" {
		t.Errorf("String() = %q", s)
	}
}

func TestParseSLOTargetsRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"  ",
		",",
		"p99",
		"99=2ms",
		"p0=1ms",
		"p100=1ms",
		"p-5=1ms",
		"pNaN=1ms",
		"p99=0s",
		"p99=-2ms",
		"p99=fast",
		"p99=2ms,p50=1ms", // not increasing
		"p99=2ms,p99=3ms", // not strictly increasing
	} {
		if _, err := ParseSLOTargets(bad); err == nil {
			t.Errorf("ParseSLOTargets(%q) accepted", bad)
		} else if !strings.Contains(err.Error(), "must") {
			t.Errorf("ParseSLOTargets(%q) error %q does not explain the constraint", bad, err)
		}
	}
}

func TestAttainment(t *testing.T) {
	// 100 samples: 1..100 (sorted). For p99 <= 98 there are 2 violations
	// (99, 100), a 2% violation fraction against a 1% error budget: burn 2.
	sample := make([]float64, 100)
	for i := range sample {
		sample[i] = float64(i + 1)
	}
	got := Attainment(sample, []SLOTarget{
		{Quantile: 0.50, BudgetNanos: 60},
		{Quantile: 0.99, BudgetNanos: 98},
	})
	p50 := got[0]
	if p50.MeasuredNanos != 50 || p50.Violations != 40 || !p50.Attained {
		t.Errorf("p50 attainment = %+v", p50)
	}
	// 40 violations over a 50%% tolerance: burn 0.8.
	if math.Abs(p50.BudgetBurn-0.8) > 1e-12 {
		t.Errorf("p50 burn = %v, want 0.8", p50.BudgetBurn)
	}
	p99 := got[1]
	if p99.MeasuredNanos != 99 || p99.Violations != 2 || p99.Attained {
		t.Errorf("p99 attainment = %+v", p99)
	}
	if math.Abs(p99.BudgetBurn-2) > 1e-12 {
		t.Errorf("p99 burn = %v, want 2", p99.BudgetBurn)
	}
}

func TestAttainmentAtBudgetIsWithinBudget(t *testing.T) {
	sample := []float64{1, 2, 2, 2, 3}
	got := Attainment(sample, []SLOTarget{{Quantile: 0.5, BudgetNanos: 2}})
	if got[0].Violations != 1 {
		t.Errorf("violations = %d, want only the 3 (at-budget 2s are within)", got[0].Violations)
	}
}

func TestAttainmentEmptySample(t *testing.T) {
	got := Attainment(nil, DefaultSLOTargets())
	for _, a := range got {
		if !a.Attained || a.Violations != 0 || a.BudgetBurn != 0 {
			t.Errorf("empty sample attainment = %+v", a)
		}
	}
}

func sampleSLOReport() *SLOReport {
	return &SLOReport{
		Schema:    SLOSchema,
		Streams:   2,
		Pressures: []int{0, 30, 70},
		Targets:   DefaultSLOTargets(),
		Entries: []SLOEntry{{
			Workload: "serve-api", Strategy: "identity", PressurePct: 30,
			Streams: 2, Requests: 96,
			Attainments: Attainment([]float64{100, 200, 3e6}, DefaultSLOTargets()),
		}},
		Overhead: []SLOOverhead{{
			Workload: "serve-api", Strategy: "identity", Requests: 96,
			OnWallNanosPerReq: 1200, OffWallNanosPerReq: 1000,
			OverheadFrac: 0.2, SimIdentical: true,
		}},
	}
}

func TestSLOReportCodecRoundTrip(t *testing.T) {
	rep := sampleSLOReport()
	var buf bytes.Buffer
	if err := WriteSLOReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSLOReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip changed the report:\n%s\n%s", a, b)
	}
}

func TestReadSLOReportRejectsHostile(t *testing.T) {
	for name, doc := range map[string]string{
		"bad schema":     `{"schema":"nope","streams":1}`,
		"zero streams":   `{"schema":"nimage.slo/v1","streams":0}`,
		"bad pressure":   `{"schema":"nimage.slo/v1","streams":1,"pressures":[130]}`,
		"bad quantile":   `{"schema":"nimage.slo/v1","streams":1,"targets":[{"quantile":1.5,"budget_nanos":10}]}`,
		"zero budget":    `{"schema":"nimage.slo/v1","streams":1,"targets":[{"quantile":0.5,"budget_nanos":0}]}`,
		"empty workload": `{"schema":"nimage.slo/v1","streams":1,"entries":[{"workload":"","strategy":"x","streams":1}]}`,
		"violations oob": `{"schema":"nimage.slo/v1","streams":1,"entries":[{"workload":"w","streams":1,"attainments":[{"quantile":0.5,"budget_nanos":1,"violations":5,"requests":2}]}]}`,
		"bad frac":       `{"schema":"nimage.slo/v1","streams":1,"entries":[{"workload":"w","streams":1,"attainments":[{"quantile":0.5,"budget_nanos":1,"violation_frac":2}]}]}`,
		"bad overhead":   `{"schema":"nimage.slo/v1","streams":1,"overhead":[{"workload":"w","on_wall_nanos_per_req":-1}]}`,
		"not json":       `]`,
	} {
		if _, err := ReadSLOReport(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// FuzzSLOCodec fuzzes both codecs of the SLO observatory: any input must
// either be rejected or decode to a document that re-encodes and
// re-decodes to the same value (accepted inputs are a round-trip fixed
// point), and no input may panic the decoder.
func FuzzSLOCodec(f *testing.F) {
	var tr bytes.Buffer
	if err := WriteRequestTrace(&tr, sampleTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(tr.Bytes())
	var rep bytes.Buffer
	if err := WriteSLOReport(&rep, sampleSLOReport()); err != nil {
		f.Fatal(err)
	}
	f.Add(rep.Bytes())
	f.Add([]byte(`{"schema":"nimage.reqtrace/v1","streams":1,"limit":0}`))
	f.Add([]byte(`{"schema":"nimage.slo/v1","streams":1}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if tr, err := ReadRequestTrace(bytes.NewReader(data)); err == nil {
			var buf bytes.Buffer
			if err := WriteRequestTrace(&buf, tr); err != nil {
				t.Fatalf("accepted trace failed to encode: %v", err)
			}
			again, err := ReadRequestTrace(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("re-encoded trace rejected: %v", err)
			}
			a, _ := json.Marshal(tr)
			b, _ := json.Marshal(again)
			if !bytes.Equal(a, b) {
				t.Fatalf("trace round trip not a fixed point:\n%s\n%s", a, b)
			}
		}
		if rep, err := ReadSLOReport(bytes.NewReader(data)); err == nil {
			var buf bytes.Buffer
			if err := WriteSLOReport(&buf, rep); err != nil {
				t.Fatalf("accepted report failed to encode: %v", err)
			}
			again, err := ReadSLOReport(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("re-encoded report rejected: %v", err)
			}
			a, _ := json.Marshal(rep)
			b, _ := json.Marshal(again)
			if !bytes.Equal(a, b) {
				t.Fatalf("report round trip not a fixed point:\n%s\n%s", a, b)
			}
		}
	})
}
