package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleTrace() *RequestTrace {
	tr := NewRequestTrace(2, 8)
	tr.Workload = "serve-api"
	tr.Layout = "identity"
	tr.Mark(MarkBurst, 0, 0)
	tr.Record(RequestRecord{ID: 0, Stream: 0, Burst: 0, Route: 3,
		StartNanos: 0, QueueNanos: 0, ServiceNanos: 1500, LatencyNanos: 1500,
		Steps: 40, Faults: 2, MajorFaults: 1, Refaults: 0, IONanos: 1200})
	tr.Record(RequestRecord{ID: 1, Stream: 1, Burst: 0, Route: 0,
		StartNanos: 0, QueueNanos: 1500, ServiceNanos: 300, LatencyNanos: 1800,
		Steps: 12})
	tr.Mark(MarkReclaim, 1, 1800)
	tr.Mark(MarkBurst, 1, 1900)
	tr.Record(RequestRecord{ID: 2, Stream: 0, Burst: 1, Route: 3,
		StartNanos: 1900, ServiceNanos: 200, LatencyNanos: 200, Steps: 12})
	return tr
}

func TestRequestTraceBounded(t *testing.T) {
	tr := NewRequestTrace(1, 2)
	for i := 0; i < 5; i++ {
		tr.Record(RequestRecord{ID: i})
	}
	if len(tr.Records) != 2 || tr.Dropped != 3 {
		t.Fatalf("records=%d dropped=%d, want 2/3", len(tr.Records), tr.Dropped)
	}
	// Default limit kicks in for non-positive limits.
	if d := NewRequestTrace(1, 0); d.Limit != DefaultTraceLimit {
		t.Errorf("default limit = %d", d.Limit)
	}
	if d := NewRequestTrace(0, 4); d.Streams != 1 {
		t.Errorf("streams clamped to %d, want 1", d.Streams)
	}
}

func TestRequestTraceNilSafe(t *testing.T) {
	var tr *RequestTrace
	tr.Record(RequestRecord{})
	tr.Mark(MarkBurst, 0, 0)
}

func TestRequestTraceCodecRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteRequestTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequestTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(tr)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip changed the trace:\n%s\n%s", a, b)
	}
}

func TestReadRequestTraceRejectsHostile(t *testing.T) {
	for name, doc := range map[string]string{
		"bad schema":     `{"schema":"nope/v1","streams":1,"limit":8}`,
		"zero streams":   `{"schema":"nimage.reqtrace/v1","streams":0,"limit":8}`,
		"huge streams":   `{"schema":"nimage.reqtrace/v1","streams":99999999,"limit":8}`,
		"stream oob":     `{"schema":"nimage.reqtrace/v1","streams":1,"limit":8,"records":[{"stream":3}]}`,
		"negative id":    `{"schema":"nimage.reqtrace/v1","streams":1,"limit":8,"records":[{"id":-1}]}`,
		"negative time":  `{"schema":"nimage.reqtrace/v1","streams":1,"limit":8,"records":[{"latency_nanos":-5}]}`,
		"negative count": `{"schema":"nimage.reqtrace/v1","streams":1,"limit":8,"records":[{"faults":-1}]}`,
		"bad mark kind":  `{"schema":"nimage.reqtrace/v1","streams":1,"limit":8,"marks":[{"kind":"boom"}]}`,
		"negative drop":  `{"schema":"nimage.reqtrace/v1","streams":1,"limit":8,"dropped":-1}`,
		"not json":       `}{`,
	} {
		if _, err := ReadRequestTrace(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteRequestChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRequestChromeTrace(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter wrote invalid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("display unit %q", doc.DisplayTimeUnit)
	}
	var meta, instants, durations int
	tids := map[int]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "i":
			instants++
		case "X":
			durations++
			tids[e.Tid] = true
		}
	}
	// One process-name record plus one thread name for the marks track and
	// one per stream.
	if meta != 2+2 {
		t.Errorf("%d metadata events, want 4", meta)
	}
	if instants != 3 {
		t.Errorf("%d instants, want 3 marks", instants)
	}
	if durations != 3 {
		t.Errorf("%d duration events, want 3 requests", durations)
	}
	// The two streams land on distinct tracks.
	if len(tids) != 2 {
		t.Errorf("requests spread over %d tracks, want 2", len(tids))
	}
	// The queued request renders at its service start, not its arrival.
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Args["id"] == float64(1) {
			if e.Ts != 1.5 { // (0 + 1500 queue) nanos -> 1.5 µs
				t.Errorf("queued request Ts = %v µs, want 1.5", e.Ts)
			}
			if e.Args["queue_nanos"] != float64(1500) {
				t.Errorf("queued request args = %v", e.Args)
			}
		}
	}
}
