package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Sink consumes registry snapshots. Sinks are pluggable outputs: JSON and
// CSV writers for files, MemorySink for tests.
type Sink interface {
	Write(s *Snapshot) error
}

// JSONSink writes snapshots as JSON documents to W.
type JSONSink struct {
	W io.Writer
	// Indent pretty-prints the document.
	Indent bool
}

// Write implements Sink.
func (s JSONSink) Write(snap *Snapshot) error {
	enc := json.NewEncoder(s.W)
	if s.Indent {
		enc.SetIndent("", "  ")
	}
	return enc.Encode(snap)
}

// ReadJSON decodes a snapshot written by JSONSink.
func ReadJSON(r io.Reader) (*Snapshot, error) {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("obs: decoding snapshot: %w", err)
	}
	return &snap, nil
}

// CSVSink writes snapshots in a flat row-oriented CSV form readable by
// ReadCSV. Row shapes:
//
//	counter,<name>,<value>
//	gauge,<name>,<value>
//	histogram,<name>,<count>,<sum>,<bounds ;-joined>,<counts ;-joined>
//	span,<seq>,<name>,<duration_nanos>
//	timeline,<name>,<fields ;-joined>
//	event,<timeline>,<seq>,<label>,<values ;-joined>
type CSVSink struct {
	W io.Writer
}

// Write implements Sink.
func (s CSVSink) Write(snap *Snapshot) error {
	w := csv.NewWriter(s.W)
	for _, c := range snap.Counters {
		w.Write([]string{"counter", c.Name, strconv.FormatInt(c.Value, 10)})
	}
	for _, g := range snap.Gauges {
		w.Write([]string{"gauge", g.Name, formatFloat(g.Value)})
	}
	for _, h := range snap.Histograms {
		w.Write([]string{"histogram", h.Name,
			strconv.FormatInt(h.Count, 10), formatFloat(h.Sum),
			joinFloats(h.Bounds), joinInts(h.Counts)})
	}
	for _, sp := range snap.Spans {
		w.Write([]string{"span", strconv.FormatInt(sp.Seq, 10), sp.Name, strconv.FormatInt(sp.DurationNanos, 10)})
	}
	for _, t := range snap.Timelines {
		w.Write([]string{"timeline", t.Name, strings.Join(t.Fields, ";")})
		for _, e := range t.Events {
			w.Write([]string{"event", t.Name, strconv.FormatInt(e.Seq, 10), e.Label, joinInts(e.Values)})
		}
	}
	w.Flush()
	return w.Error()
}

// ReadCSV decodes a snapshot written by CSVSink.
func ReadCSV(r io.Reader) (*Snapshot, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	snap := &Snapshot{Schema: SchemaVersion}
	timelines := make(map[string]*TimelinePoint)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("obs: reading csv snapshot: %w", err)
		}
		if len(rec) < 3 {
			return nil, fmt.Errorf("obs: short csv row %q", rec)
		}
		switch rec[0] {
		case "counter":
			v, err := strconv.ParseInt(rec[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("obs: counter %s: %w", rec[1], err)
			}
			snap.Counters = append(snap.Counters, CounterPoint{Name: rec[1], Value: v})
		case "gauge":
			v, err := strconv.ParseFloat(rec[2], 64)
			if err != nil {
				return nil, fmt.Errorf("obs: gauge %s: %w", rec[1], err)
			}
			snap.Gauges = append(snap.Gauges, GaugePoint{Name: rec[1], Value: v})
		case "histogram":
			if len(rec) != 6 {
				return nil, fmt.Errorf("obs: histogram row needs 6 fields, got %d", len(rec))
			}
			count, err := strconv.ParseInt(rec[2], 10, 64)
			if err != nil {
				return nil, err
			}
			sum, err := strconv.ParseFloat(rec[3], 64)
			if err != nil {
				return nil, err
			}
			bounds, err := splitFloats(rec[4])
			if err != nil {
				return nil, err
			}
			counts, err := splitInts(rec[5])
			if err != nil {
				return nil, err
			}
			snap.Histograms = append(snap.Histograms, HistogramPoint{
				Name: rec[1], Count: count, Sum: sum, Bounds: bounds, Counts: counts,
			})
		case "span":
			if len(rec) != 4 {
				return nil, fmt.Errorf("obs: span row needs 4 fields, got %d", len(rec))
			}
			seq, err := strconv.ParseInt(rec[1], 10, 64)
			if err != nil {
				return nil, err
			}
			d, err := strconv.ParseInt(rec[3], 10, 64)
			if err != nil {
				return nil, err
			}
			snap.Spans = append(snap.Spans, SpanPoint{Seq: seq, Name: rec[2], DurationNanos: d})
		case "timeline":
			var fields []string
			if rec[2] != "" {
				fields = strings.Split(rec[2], ";")
			}
			snap.Timelines = append(snap.Timelines, TimelinePoint{Name: rec[1], Fields: fields})
			timelines[rec[1]] = &snap.Timelines[len(snap.Timelines)-1]
		case "event":
			if len(rec) != 5 {
				return nil, fmt.Errorf("obs: event row needs 5 fields, got %d", len(rec))
			}
			t := timelines[rec[1]]
			if t == nil {
				return nil, fmt.Errorf("obs: event for unknown timeline %q", rec[1])
			}
			seq, err := strconv.ParseInt(rec[2], 10, 64)
			if err != nil {
				return nil, err
			}
			values, err := splitInts(rec[4])
			if err != nil {
				return nil, err
			}
			t.Events = append(t.Events, TimelineEvent{Seq: seq, Label: rec[3], Values: values})
		default:
			return nil, fmt.Errorf("obs: unknown csv row kind %q", rec[0])
		}
	}
	return snap, nil
}

// MemorySink accumulates snapshots in memory for tests.
type MemorySink struct {
	mu        sync.Mutex
	snapshots []*Snapshot
}

// Write implements Sink.
func (s *MemorySink) Write(snap *Snapshot) error {
	s.mu.Lock()
	s.snapshots = append(s.snapshots, snap)
	s.mu.Unlock()
	return nil
}

// Snapshots returns the snapshots written so far.
func (s *MemorySink) Snapshots() []*Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Snapshot(nil), s.snapshots...)
}

// formatFloat renders a float so that parsing it back is exact.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func joinFloats(vs []float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = formatFloat(v)
	}
	return strings.Join(parts, ";")
}

func joinInts(vs []int64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.FormatInt(v, 10)
	}
	return strings.Join(parts, ";")
}

func splitFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ";")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: bad float list %q: %w", s, err)
		}
		out[i] = v
	}
	return out, nil
}

func splitInts(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ";")
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: bad int list %q: %w", s, err)
		}
		out[i] = v
	}
	return out, nil
}
