package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleFleetReport() *FleetReport {
	return &FleetReport{
		Schema:      FleetSchema,
		Bursts:      2,
		BurstSize:   8,
		CacheBudget: 96,
		PressurePct: 50,
		Policy:      "lru",
		Targets:     DefaultSLOTargets(),
		Tenants: []FleetTenant{
			{
				Tenant: 0, Workload: "serve-api", Strategy: "cu+heap path",
				StartupNanos: 4.2e6, WarmMeanNanos: 1.8e5, WarmP99Nanos: 9.1e5,
				Faults: 420, MajorFaults: 120, Refaults: 30, IONanos: 8.6e6,
				EvictedPages: 5, ResidentPages: 44,
				Timeline: []FleetBurst{
					{Burst: 0, Requests: 8, MeanNanos: 2.5e5, P99Nanos: 1.4e6,
						MajorFaults: 80, Refaults: 0, EvictedPages: 2, ResidentPages: 40},
					{Burst: 1, Requests: 8, MeanNanos: 1.8e5, P99Nanos: 9.1e5,
						MajorFaults: 40, Refaults: 30, EvictedPages: 3, ResidentPages: 44},
				},
				Attainment:        Attainment([]float64{100, 200, 3e6}, DefaultSLOTargets()),
				SoloWarmMeanNanos: 1.5e5, SoloRefaults: 10,
				IsolationLatency: 1.2, IsolationRefault: 31.0 / 11.0,
			},
			{
				Tenant: 1, Workload: "serve-cache", Strategy: "c3", QuotaPages: 48,
				StartupNanos: 3.9e6, WarmMeanNanos: 1.2e5, WarmP99Nanos: 6.4e5,
				Faults: 380, MajorFaults: 90, Refaults: 18, IONanos: 6.2e6,
				EvictedPages: 7, ResidentPages: 48,
				Timeline: []FleetBurst{
					{Burst: 0, Requests: 8, MeanNanos: 1.9e5, P99Nanos: 8.8e5,
						MajorFaults: 60, Refaults: 0, EvictedPages: 4, ResidentPages: 46},
					{Burst: 1, Requests: 8, MeanNanos: 1.2e5, P99Nanos: 6.4e5,
						MajorFaults: 30, Refaults: 18, EvictedPages: 3, ResidentPages: 48},
				},
				Attainment:        Attainment([]float64{90, 150, 4e5}, DefaultSLOTargets()),
				SoloWarmMeanNanos: 1.1e5, SoloRefaults: 8,
				IsolationLatency: 1.09, IsolationRefault: 19.0 / 9.0,
			},
		},
		EvictedBy: [][]int64{
			{0, 2, 3},
			{0, 1, 2},
			{0, 2, 2},
		},
		TotalEvictions: 12,
	}
}

func TestFleetReportCodecRoundTrip(t *testing.T) {
	rep := sampleFleetReport()
	var buf bytes.Buffer
	if err := WriteFleetReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFleetReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip changed the report:\n%s\n%s", a, b)
	}
}

func TestReadFleetReportRejectsHostile(t *testing.T) {
	for name, doc := range map[string]string{
		"bad schema":       `{"schema":"nope","evicted_by":[[0]]}`,
		"negative bursts":  `{"schema":"nimage.fleet/v1","bursts":-1,"evicted_by":[[0]]}`,
		"bad pressure":     `{"schema":"nimage.fleet/v1","pressure_pct":130,"evicted_by":[[0]]}`,
		"bad target":       `{"schema":"nimage.fleet/v1","targets":[{"quantile":1.5,"budget_nanos":10}],"evicted_by":[[0]]}`,
		"tenant id":        `{"schema":"nimage.fleet/v1","tenants":[{"tenant":1,"workload":"w","strategy":"s"}],"evicted_by":[[0,0],[0,0]]}`,
		"empty workload":   `{"schema":"nimage.fleet/v1","tenants":[{"tenant":0,"workload":"","strategy":"s"}],"evicted_by":[[0,0],[0,0]]}`,
		"negative counter": `{"schema":"nimage.fleet/v1","tenants":[{"tenant":0,"workload":"w","strategy":"s","faults":-1}],"evicted_by":[[0,0],[0,0]]}`,
		"burst index":      `{"schema":"nimage.fleet/v1","tenants":[{"tenant":0,"workload":"w","strategy":"s","timeline":[{"burst":3}]}],"evicted_by":[[0,0],[0,0]]}`,
		"missing matrix":   `{"schema":"nimage.fleet/v1"}`,
		"ragged matrix":    `{"schema":"nimage.fleet/v1","tenants":[{"tenant":0,"workload":"w","strategy":"s"}],"evicted_by":[[0,0],[0]]}`,
		"matrix sum":       `{"schema":"nimage.fleet/v1","evicted_by":[[3]],"total_evictions":2}`,
		"column sum":       `{"schema":"nimage.fleet/v1","tenants":[{"tenant":0,"workload":"w","strategy":"s","evicted_pages":1}],"evicted_by":[[0,0],[0,0]],"total_evictions":0}`,
		"negative cell":    `{"schema":"nimage.fleet/v1","evicted_by":[[-1]],"total_evictions":-1}`,
		"bad attainment":   `{"schema":"nimage.fleet/v1","tenants":[{"tenant":0,"workload":"w","strategy":"s","attainment":[{"quantile":0.5,"budget_nanos":1,"violations":5,"requests":2}]}],"evicted_by":[[0,0],[0,0]]}`,
		"bad isolation":    `{"schema":"nimage.fleet/v1","tenants":[{"tenant":0,"workload":"w","strategy":"s","isolation_latency":-1}],"evicted_by":[[0,0],[0,0]]}`,
		"not json":         `]`,
	} {
		if _, err := ReadFleetReport(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteFleetChromeTrace(t *testing.T) {
	rep := sampleFleetReport()
	tr := NewRequestTrace(2, 16)
	tr.Mark(MarkBurst, 0, 0)
	tr.Record(RequestRecord{ID: 0, Stream: 0, Burst: 0, Route: 1,
		StartNanos: 10, ServiceNanos: 100, LatencyNanos: 100})
	tr.Mark(MarkReclaim, 1, 500)
	tr.Mark(MarkBurst, 1, 600)
	tr.Record(RequestRecord{ID: 1, Stream: 1, Burst: 1, Route: 0,
		StartNanos: 620, QueueNanos: 5, ServiceNanos: 80, LatencyNanos: 85})
	var buf bytes.Buffer
	if err := WriteFleetChromeTrace(&buf, rep, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not JSON: %v", err)
	}
	var tenantTracks, counters, instants, durations int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			if name, _ := ev["args"].(map[string]any)["name"].(string); strings.HasPrefix(name, "tenant ") {
				tenantTracks++
			}
		case "C":
			counters++
		case "i":
			instants++
		case "X":
			durations++
		}
	}
	if tenantTracks != 2 {
		t.Errorf("got %d tenant tracks, want 2", tenantTracks)
	}
	if counters != rep.Bursts {
		t.Errorf("got %d eviction counter samples, want %d", counters, rep.Bursts)
	}
	if instants != 3 || durations != 2 {
		t.Errorf("got %d instants and %d request events, want 3 and 2", instants, durations)
	}
	// A nil request trace still renders the eviction-pressure track.
	buf.Reset()
	if err := WriteFleetChromeTrace(&buf, rep, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "eviction pressure") {
		t.Error("traceless export dropped the eviction-pressure track")
	}
}

// FuzzFleetCodec fuzzes the fleet report codec: any input must either be
// rejected or decode to a document that re-encodes and re-decodes to the
// same value (accepted inputs are a round-trip fixed point), and no
// input may panic the decoder.
func FuzzFleetCodec(f *testing.F) {
	var rep bytes.Buffer
	if err := WriteFleetReport(&rep, sampleFleetReport()); err != nil {
		f.Fatal(err)
	}
	f.Add(rep.Bytes())
	f.Add([]byte(`{"schema":"nimage.fleet/v1","evicted_by":[[0]]}`))
	f.Add([]byte(`{"schema":"nimage.fleet/v1","tenants":[{"tenant":0,"workload":"w","strategy":"s"}],"evicted_by":[[0,1],[0,0]],"total_evictions":1}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := ReadFleetReport(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFleetReport(&buf, rep); err != nil {
			t.Fatalf("accepted report failed to encode: %v", err)
		}
		again, err := ReadFleetReport(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded report rejected: %v", err)
		}
		a, _ := json.Marshal(rep)
		b, _ := json.Marshal(again)
		if !bytes.Equal(a, b) {
			t.Fatalf("report round trip not a fixed point:\n%s\n%s", a, b)
		}
	})
}
