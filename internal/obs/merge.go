package obs

import "sort"

// MergeSnapshots combines snapshots — e.g. the per-build registries of one
// evaluation outcome — into a single aggregate snapshot. The merge is
// deterministic in argument order and independent of where the snapshots
// were produced: counters add, gauges keep the last value in argument
// order, histograms add bucket counts (snapshots with differing bucket
// bounds keep the first layout and still accumulate Count and Sum), and
// spans and timeline events are concatenated with their sequence numbers
// rebased so the events of later snapshots order after earlier ones. Nil
// snapshots are skipped; the result is sorted exactly like
// Registry.Snapshot.
func MergeSnapshots(snaps ...*Snapshot) *Snapshot {
	out := &Snapshot{Schema: SchemaVersion}
	counters := make(map[string]int64)
	gauges := make(map[string]float64)
	hists := make(map[string]*HistogramPoint)
	timelines := make(map[string]*TimelinePoint)
	var seqBase int64
	for _, s := range snaps {
		if s == nil {
			continue
		}
		for _, c := range s.Counters {
			counters[c.Name] += c.Value
		}
		for _, g := range s.Gauges {
			gauges[g.Name] = g.Value
		}
		for _, h := range s.Histograms {
			m := hists[h.Name]
			if m == nil {
				hists[h.Name] = &HistogramPoint{
					Name:   h.Name,
					Bounds: append([]float64(nil), h.Bounds...),
					Counts: append([]int64(nil), h.Counts...),
					Count:  h.Count,
					Sum:    h.Sum,
				}
				continue
			}
			m.Count += h.Count
			m.Sum += h.Sum
			if len(m.Counts) == len(h.Counts) && equalBounds(m.Bounds, h.Bounds) {
				for i, c := range h.Counts {
					m.Counts[i] += c
				}
			}
		}
		// Rebase this snapshot's sequence numbers past everything merged so
		// far, preserving both its internal order and the argument order.
		var maxSeq int64
		for _, sp := range s.Spans {
			out.Spans = append(out.Spans, SpanPoint{
				Seq: seqBase + sp.Seq, Name: sp.Name, DurationNanos: sp.DurationNanos,
			})
			if sp.Seq > maxSeq {
				maxSeq = sp.Seq
			}
		}
		for _, tl := range s.Timelines {
			m := timelines[tl.Name]
			if m == nil {
				m = &TimelinePoint{Name: tl.Name, Fields: append([]string(nil), tl.Fields...)}
				timelines[tl.Name] = m
			}
			for _, ev := range tl.Events {
				m.Events = append(m.Events, TimelineEvent{
					Seq: seqBase + ev.Seq, Label: ev.Label,
					Values: append([]int64(nil), ev.Values...),
				})
				if ev.Seq > maxSeq {
					maxSeq = ev.Seq
				}
			}
		}
		seqBase += maxSeq
	}
	for name, v := range counters {
		out.Counters = append(out.Counters, CounterPoint{Name: name, Value: v})
	}
	for name, v := range gauges {
		out.Gauges = append(out.Gauges, GaugePoint{Name: name, Value: v})
	}
	for _, h := range hists {
		out.Histograms = append(out.Histograms, *h)
	}
	for _, tl := range timelines {
		out.Timelines = append(out.Timelines, *tl)
	}
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	sort.Slice(out.Gauges, func(i, j int) bool { return out.Gauges[i].Name < out.Gauges[j].Name })
	sort.Slice(out.Histograms, func(i, j int) bool { return out.Histograms[i].Name < out.Histograms[j].Name })
	sort.Slice(out.Spans, func(i, j int) bool { return out.Spans[i].Seq < out.Spans[j].Seq })
	sort.Slice(out.Timelines, func(i, j int) bool { return out.Timelines[i].Name < out.Timelines[j].Name })
	return out
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
