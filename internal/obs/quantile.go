package obs

import (
	"math"
	"sort"
)

// QuantileExact returns the exact nearest-rank q-quantile of a sorted
// sample — unlike histogram quantiles, which interpolate buckets. It is
// the single shared implementation behind the serve-mode burst quantiles
// and the SLO scorecards. An empty sample yields 0; q is clamped to
// [0, 1] by the rank computation. The sample must already be sorted
// ascending: passing an unsorted slice is a programming error and
// panics, because a silently wrong p99 is worse than a crash.
func QuantileExact(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if !sort.Float64sAreSorted(sorted) {
		panic("obs: QuantileExact requires an ascending sorted sample")
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
