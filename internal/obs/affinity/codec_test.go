package affinity

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// validGraphBytes serializes a small recorded graph.
func validGraphBytes(t testing.TB) []byte {
	r := NewRecorder(testIndex(), Config{WindowEvents: 2})
	for i, p := range []int{0, 1, 2, 3, 0, 2} {
		access(r, p, int64(i+1))
	}
	g := r.Graph()
	g.Workload, g.Layout = "w", "identity"
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadGraphRejectsHostileInput covers the decoder's validation
// paths: wrong schema, out-of-range indices, non-finite weights, and
// bound-busting counts — the same contract the codec fuzzer drives.
func TestReadGraphRejectsHostileInput(t *testing.T) {
	cases := map[string]struct {
		data    string
		wantErr string
	}{
		"empty":      {"", "decoding graph"},
		"not-json":   {"{", "decoding graph"},
		"bad-schema": {`{"schema":"nimage.attrib/v1"}`, "unsupported schema"},
		"negative-pages": {
			`{"schema":"nimage.affinity/v1","file_size":-1,"pages":-3,"config":{}}`,
			"negative file size or page count"},
		"edge-out-of-range": {
			`{"schema":"nimage.affinity/v1","config":{},
			  "nodes":[{"name":"a","kind":"cu"}],
			  "edges":[{"a":0,"b":5,"weight":1}]}`,
			"endpoint out of node range"},
		"edge-unordered": {
			`{"schema":"nimage.affinity/v1","config":{},
			  "nodes":[{"name":"a","kind":"cu"},{"name":"b","kind":"cu"}],
			  "edges":[{"a":1,"b":0,"weight":1}]}`,
			"endpoints not ordered"},
		"edge-negative-weight": {
			`{"schema":"nimage.affinity/v1","config":{},
			  "nodes":[{"name":"a","kind":"cu"},{"name":"b","kind":"cu"}],
			  "edges":[{"a":0,"b":1,"weight":-2}]}`,
			"finite non-negative"},
		"window-node-out-of-range": {
			`{"schema":"nimage.affinity/v1","config":{},
			  "nodes":[{"name":"a","kind":"cu"}],
			  "window_log":[{"start_clock":1,"events":1,"nodes":[7]}]}`,
			"out of range"},
		"negative-node-counter": {
			`{"schema":"nimage.affinity/v1","config":{},
			  "nodes":[{"name":"a","kind":"cu","faults":-1}]}`,
			"negative counter"},
		"empty-node-name": {
			`{"schema":"nimage.affinity/v1","config":{},
			  "nodes":[{"name":"","kind":"cu"}]}`,
			"empty name"},
		"decay-out-of-bounds": {
			`{"schema":"nimage.affinity/v1","config":{"decay":3}}`,
			"config out of bounds"},
		"negative-total": {
			`{"schema":"nimage.affinity/v1","config":{},"faults":-4}`,
			"negative total counter"},
	}
	for name, tc := range cases {
		_, err := ReadGraph(strings.NewReader(tc.data))
		if err == nil {
			t.Errorf("%s: hostile input accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", name, err, tc.wantErr)
		}
	}
}

// FuzzAffinityCodec asserts the graph decoder never panics, and that any
// document it accepts re-encodes canonically: encode(decode(data)) must
// be a fixed point of a further decode/encode round trip.
func FuzzAffinityCodec(f *testing.F) {
	valid := validGraphBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{"schema":"nimage.affinity/v1","config":{}}`))
	f.Add([]byte(`{"schema":"nimage.affinity/v1","config":{"decay":0.5},` +
		`"nodes":[{"name":"a","kind":"cu"},{"name":"b","kind":"object"}],` +
		`"edges":[{"a":0,"b":1,"weight":2.5,"co":3}],` +
		`"window_log":[{"start_clock":1,"events":2,"nodes":[0,1]}]}`))
	f.Add([]byte(`{"schema":"nimage.affinity/v1","config":{},"edges":[{"a":0,"b":1,"weight":1e999}]}`))
	corrupt := append([]byte{}, valid...)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadGraph(bytes.NewReader(data))
		if err != nil {
			return
		}
		var b1 bytes.Buffer
		if err := WriteGraph(&b1, g); err != nil {
			t.Fatalf("re-encoding accepted graph: %v", err)
		}
		g2, err := ReadGraph(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		var b2 bytes.Buffer
		if err := WriteGraph(&b2, g2); err != nil {
			t.Fatalf("re-encoding round-tripped graph: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatal("graph encoding is not canonical under round trip")
		}
	})
}

// TestExporters smoke-tests the DOT and Chrome-trace writers on a
// recorded graph: valid JSON for the trace, balanced braces and the top
// edge present for the DOT.
func TestExporters(t *testing.T) {
	r := NewRecorder(testIndex(), Config{WindowEvents: 2})
	for i, p := range []int{0, 2, 1, 3, 0, 2} {
		access(r, p, int64(i+1))
	}
	g := r.Graph()
	g.Workload, g.Layout = "w", "identity"

	var dot bytes.Buffer
	if err := WriteDOT(&dot, g, 1); err != nil {
		t.Fatal(err)
	}
	s := dot.String()
	if !strings.HasPrefix(s, "graph affinity {") || !strings.HasSuffix(s, "}\n") {
		t.Fatalf("dot framing:\n%s", s)
	}
	if !strings.Contains(s, "--") || !strings.Contains(s, "penwidth") {
		t.Fatalf("dot missing edges:\n%s", s)
	}
	if got := strings.Count(s, " -- "); got != 1 {
		t.Fatalf("dot edge count = %d, want 1 (top=1)", got)
	}

	var tr bytes.Buffer
	if err := WriteChromeTrace(&tr, g); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(tr.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	evs, ok := doc["traceEvents"].([]any)
	if !ok || len(evs) == 0 {
		t.Fatal("trace has no events")
	}
}
