package affinity

// Layout scorecards: graph × layout → a static prediction of serve-mode
// quality. The affinity graph names symbols (build-stable names), and a
// candidate layout places the same symbols at new offsets, so a graph
// recorded once against the baseline can score every candidate layout
// without re-running the simulation — the cheap inner iteration a layout
// search or rebake loop needs, with MeasureServe as the ground truth it
// must order-agree with (asserted by an eval test).

import (
	"fmt"
	"sort"

	"nimage/internal/obs/attrib"
	"nimage/internal/osim"
)

// Scorecard is the static layout-quality prediction for one strategy.
type Scorecard struct {
	Workload string `json:"workload,omitempty"`
	// Strategy names the scored layout ("identity", "cu", ...).
	Strategy string `json:"strategy"`
	// PressurePct is the inter-window reclaim percentage the refault
	// replay simulated (mirrors ServeConfig.PressurePct); CacheBudget the
	// resident-page cap enforced during windows (mirrors
	// ServeConfig.CacheBudget; 0 = unbounded).
	PressurePct int `json:"pressure_pct"`
	CacheBudget int `json:"cache_budget,omitempty"`

	// MappedNodes counts graph nodes the layout places (by name);
	// TotalNodes all graph nodes. Unmapped nodes (pseudo-nodes, symbols
	// the strategy dropped) are excluded from the scores.
	MappedNodes int `json:"mapped_nodes"`
	TotalNodes  int `json:"total_nodes"`

	// LocalityScore is the fraction of mapped edge weight whose endpoints
	// land on the same or adjacent pages of the layout (1.0 = every
	// affinity edge is page-local; higher is better).
	LocalityScore float64 `json:"locality_score"`
	// SamePageWeight/AdjacentWeight/FarWeight decompose the mapped edge
	// weight by endpoint page distance (0, 1, >1).
	SamePageWeight float64 `json:"same_page_weight"`
	AdjacentWeight float64 `json:"adjacent_weight"`
	FarWeight      float64 `json:"far_weight"`

	// AvgWindowPages/PeakWindowPages are the expected and worst-case
	// working-set pages per co-residency window under this layout (lower
	// is better — fewer pages must stay resident per burst).
	AvgWindowPages  float64 `json:"avg_window_pages"`
	PeakWindowPages int     `json:"peak_window_pages"`

	// PredictedRefaults replays the window log against the layout under
	// an LRU reclaim of PressurePct between windows and the CacheBudget
	// resident cap during them — the static proxy for MeasureServe's
	// refault count. PredictedColdPages counts the distinct pages the
	// replay touched (the layout's working set).
	PredictedRefaults  int64 `json:"predicted_refaults"`
	PredictedColdPages int64 `json:"predicted_cold_pages"`
	// PredictedRefaultFactor is baseline/strategy predicted refaults
	// (additively smoothed: (b+1)/(s+1), so zero predictions stay
	// rankable; >1 = better than baseline). Filled by RefaultFactors.
	PredictedRefaultFactor float64 `json:"predicted_refault_factor,omitempty"`
}

// layoutSymbol is a node resolved into a candidate layout.
type layoutSymbol struct {
	firstPage int64
	lastPage  int64
}

// Placement resolves graph nodes into a candidate layout by symbol name.
// Build it once per layout and score many graphs (or vice versa).
type Placement struct {
	byName map[string]layoutSymbol
}

// NewPlacement indexes a layout's symbols by name for scoring. The
// symbols come from the candidate image's attribution index — the same
// build-stable names the graph's nodes carry, so a graph recorded
// against one layout scores any other layout of the same program.
func NewPlacement(syms []attrib.Symbol) *Placement {
	p := &Placement{byName: make(map[string]layoutSymbol, len(syms))}
	for _, s := range syms {
		if s.Len <= 0 {
			continue
		}
		p.byName[s.Name] = layoutSymbol{
			firstPage: s.Off / osim.PageSize,
			lastPage:  (s.Off + s.Len - 1) / osim.PageSize,
		}
	}
	return p
}

// Score computes the scorecard of one layout against the recorded graph.
// pressurePct is the inter-window reclaim percentage of the refault
// replay and cacheBudget its resident-page cap (use the serve config's
// values to mirror MeasureServe; 0 budget = unbounded). A pressure
// outside [0, 100] or a negative budget is rejected, mirroring the CLI
// bounds — a percentage over 100 would silently reclaim everything,
// masking a caller bug.
func Score(g *Graph, layout *Placement, strategy string, pressurePct, cacheBudget int) (*Scorecard, error) {
	if pressurePct < 0 || pressurePct > 100 {
		return nil, fmt.Errorf("affinity: pressurePct %d out of range [0, 100]", pressurePct)
	}
	if cacheBudget < 0 {
		return nil, fmt.Errorf("affinity: cacheBudget %d must be >= 0", cacheBudget)
	}
	sc := &Scorecard{
		Workload:    g.Workload,
		Strategy:    strategy,
		PressurePct: pressurePct,
		CacheBudget: cacheBudget,
		TotalNodes:  len(g.Nodes),
	}
	pages := make([]layoutSymbol, len(g.Nodes))
	mapped := make([]bool, len(g.Nodes))
	for i, n := range g.Nodes {
		if ls, ok := layout.byName[n.Name]; ok {
			pages[i] = ls
			mapped[i] = true
			sc.MappedNodes++
		}
	}

	// Locality: edge weight by endpoint page distance in the layout.
	for _, e := range g.Edges {
		if !mapped[e.A] || !mapped[e.B] {
			continue
		}
		d := pages[e.A].firstPage - pages[e.B].firstPage
		if d < 0 {
			d = -d
		}
		switch {
		case d == 0:
			sc.SamePageWeight += e.Weight
		case d == 1:
			sc.AdjacentWeight += e.Weight
		default:
			sc.FarWeight += e.Weight
		}
	}
	if total := sc.SamePageWeight + sc.AdjacentWeight + sc.FarWeight; total > 0 {
		sc.LocalityScore = (sc.SamePageWeight + sc.AdjacentWeight) / total
	}

	// Window working sets and the refault replay: windows become bursts,
	// inter-window pressure reclaims the coldest resident pages (the LRU
	// mirror of osim.ReclaimFraction), then the window's pages are
	// touched in node order with the budget's LRU eviction applied after
	// every touch (the mirror of osim's CacheBudget) — without the
	// budget, a layout whose burst working set overflows the cache looks
	// as good as one that fits it, and the predicted ordering diverges
	// from the measured one exactly where serve mode hurts most.
	resident := make(map[int64]int64) // page -> last-use stamp
	evicted := make(map[int64]bool)
	touched := make(map[int64]bool)
	var stamp int64
	var sumPages int64
	for _, w := range g.WindowLog {
		// Reclaim only at the recorded pressure boundaries (the measured
		// run's inter-burst evictions), not between every window — a
		// burst spans many windows, and reclaiming at each would swamp
		// the budget churn that dominates the measured refault count.
		if w.Pressure && pressurePct > 0 {
			reclaim(resident, evicted, len(resident)*pressurePct/100)
		}
		winPages := make(map[int64]bool)
		for _, id := range w.Nodes {
			if !mapped[id] {
				continue
			}
			for p := pages[id].firstPage; p <= pages[id].lastPage; p++ {
				winPages[p] = true
				stamp++
				if evicted[p] {
					sc.PredictedRefaults++
					delete(evicted, p)
				}
				resident[p] = stamp
				touched[p] = true
				if cacheBudget > 0 && len(resident) > cacheBudget {
					reclaim(resident, evicted, len(resident)-cacheBudget)
				}
			}
		}
		sumPages += int64(len(winPages))
		if len(winPages) > sc.PeakWindowPages {
			sc.PeakWindowPages = len(winPages)
		}
	}
	if n := len(g.WindowLog); n > 0 {
		sc.AvgWindowPages = float64(sumPages) / float64(n)
	}
	sc.PredictedColdPages = int64(len(touched))
	return sc, nil
}

// reclaim evicts the n coldest resident pages (smallest stamp, ties by
// page index — deterministic, matching osim's LRU tie-break).
func reclaim(resident map[int64]int64, evicted map[int64]bool, n int) {
	if n <= 0 || len(resident) == 0 {
		return
	}
	type pageUse struct {
		page  int64
		stamp int64
	}
	all := make([]pageUse, 0, len(resident))
	for p, s := range resident {
		all = append(all, pageUse{p, s})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].stamp != all[j].stamp {
			return all[i].stamp < all[j].stamp
		}
		return all[i].page < all[j].page
	})
	if n > len(all) {
		n = len(all)
	}
	for _, v := range all[:n] {
		delete(resident, v.page)
		evicted[v.page] = true
	}
}

// RefaultFactors fills PredictedRefaultFactor on each card relative to
// the baseline card: (baseline+1)/(card+1), additively smoothed so zero
// predictions rank sensibly (>1 = fewer predicted refaults than the
// baseline layout). The smoothing is monotone, so factor ordering equals
// predicted-refault ordering.
func RefaultFactors(baseline *Scorecard, cards []*Scorecard) {
	if baseline == nil {
		return
	}
	for _, c := range cards {
		if c == nil {
			continue
		}
		c.PredictedRefaultFactor = float64(baseline.PredictedRefaults+1) / float64(c.PredictedRefaults+1)
	}
}
