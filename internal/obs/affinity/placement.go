package affinity

// Candidate-order placements: resolve a proposed symbol ordering into a
// synthetic Placement without baking an image. The layout search scores
// hundreds of candidate orderings per accepted rebake; laying the graph's
// own nodes out at CU-style sequential 16-aligned offsets mirrors what
// the bake path (core.OrderCUs + the .text layouter) would produce
// closely enough for ranking, at none of the build cost.

import "nimage/internal/obs/attrib"

// cuAlign mirrors the image layouter's 16-byte CU alignment, so page
// boundaries of the synthetic placement fall where the baked image's
// would.
const cuAlign = 16

// OrderPlacement lays the named graph nodes out sequentially in the
// given order — each at the next 16-aligned offset, sized by the node's
// recorded length — and appends any graph text nodes the order omits in
// graph-node order (the bake path likewise appends unprofiled CUs after
// the profiled prefix). Names the graph does not know are skipped. The
// result scores with Score exactly like a placement read from a baked
// image's attribution index.
func OrderPlacement(g *Graph, order []string) *Placement {
	syms := make([]attrib.Symbol, 0, len(g.Nodes))
	var off int64
	place := func(name string, size int64) {
		if size <= 0 {
			return
		}
		if rem := off % cuAlign; rem != 0 {
			off += cuAlign - rem
		}
		syms = append(syms, attrib.Symbol{Name: name, Off: off, Len: size})
		off += size
	}
	sizeOf := make(map[string]int64, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Kind == attrib.KindCU {
			sizeOf[n.Name] = n.Len
		}
	}
	placed := make(map[string]bool, len(order))
	for _, name := range order {
		size, ok := sizeOf[name]
		if !ok || placed[name] {
			continue
		}
		placed[name] = true
		place(name, size)
	}
	for _, n := range g.Nodes {
		if n.Kind == attrib.KindCU && !placed[n.Name] {
			placed[n.Name] = true
			place(n.Name, n.Len)
		}
	}
	return NewPlacement(syms)
}
