// Package affinity records temporal symbol co-access affinity from the
// simulated page-event streams: which CUs and heap objects are hot
// *together* over time, not just which faulted first. First-touch order
// (what the profile-guided layouts of the paper consume) is enough to
// compact the cold-start path, but the graph-based layouts the ROADMAP
// points at next — C3-style balanced partitioning, ext-TSP ordering
// (Newell & Pupyrev) — and any latency-SLO rebake loop need an affinity
// signal: edge weights between symbols that share working-set windows.
//
// The pieces: a Recorder attaches to one osim mapping as FaultObserver,
// EvictionObserver and AccessObserver, folding the coarse page-access
// stream into a sliding co-residency window and a weighted symbol×symbol
// graph (co-occurrence edges within a window, transition edges between
// consecutive accesses, per-window decay, bounded edge budget); a Graph
// is the serializable result; Score (score.go) turns graph × layout into
// a per-strategy scorecard — the static proxy for MeasureServe. Codecs
// live in codec.go (JSON), dot.go (GraphViz), trace.go (Chrome trace).
//
// Every event charges exactly one node — the symbol containing the
// event's byte offset, falling back to the page's representative symbol
// when the offset lands in an uncovered gap — so node sums reconcile
// exactly with osim's mapping and file counters: the same contract the
// attrib recorder enforces per section, asserted by tests, not assumed.
// Offset resolution matters for the graph-based layouts: a page-granular
// graph names one representative CU per touched page, so a layout baked
// from it covers a fraction of the executed code and degrades toward the
// identity order for everything else.
package affinity

import (
	"sort"

	"nimage/internal/obs/attrib"
	"nimage/internal/osim"
)

// GraphSchema versions the serialized affinity document.
const GraphSchema = "nimage.affinity/v1"

// Config bounds the recorder's memory and sets its temporal resolution.
// The zero value means "use defaults" (DefaultConfig).
type Config struct {
	// WindowEvents is the co-residency window length in coarse access
	// events: symbols accessed within the same window gain co-occurrence
	// edge weight.
	WindowEvents int `json:"window_events"`
	// MaxEdges bounds the edge set; when exceeded after a window
	// rotation, the lightest edges are pruned (their raw counts move to
	// the Pruned* totals so reconciliation stays exact).
	MaxEdges int `json:"max_edges"`
	// Decay multiplies every edge weight at each window rotation, so the
	// weights favour recent co-access (serve-mode bursts) over startup
	// history. Raw Co/Trans counts are never decayed.
	Decay float64 `json:"decay"`
	// MaxWindows bounds the retained window log (the Chrome-trace track
	// and the scorecard replay input); older windows are dropped and
	// counted in DroppedWindows.
	MaxWindows int `json:"max_windows"`
	// MaxWindowSymbols caps the distinct symbols recorded per window
	// (the co-occurrence fold is quadratic in it). Overflowing accesses
	// still count; their window membership is dropped and counted in
	// OverflowEvents.
	MaxWindowSymbols int `json:"max_window_symbols"`
}

// DefaultConfig returns the recorder defaults.
func DefaultConfig() Config {
	return Config{WindowEvents: 32, MaxEdges: 4096, Decay: 0.95, MaxWindows: 256, MaxWindowSymbols: 128}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.WindowEvents <= 0 {
		c.WindowEvents = d.WindowEvents
	}
	if c.MaxEdges <= 0 {
		c.MaxEdges = d.MaxEdges
	}
	if !(c.Decay > 0 && c.Decay <= 1) {
		c.Decay = d.Decay
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = d.MaxWindows
	}
	if c.MaxWindowSymbols <= 0 {
		c.MaxWindowSymbols = d.MaxWindowSymbols
	}
	return c
}

// KindUnattributed marks pseudo-nodes for pages no indexed symbol covers.
const KindUnattributed = "unattributed"

// Node is one vertex of the affinity graph: a layout symbol (or the
// per-section pseudo-symbol for uncovered pages) with its event counts.
type Node struct {
	// Name, Type, Kind, Section, Off, Len mirror attrib.Symbol; names are
	// build-stable, so graphs score against other layouts of the same
	// program by name.
	Name    string `json:"name"`
	Type    string `json:"type,omitempty"`
	Kind    string `json:"kind"`
	Section string `json:"section,omitempty"`
	Off     int64  `json:"off"`
	Len     int64  `json:"len"`
	// Accesses counts coarse page-access events charged to the node.
	Accesses int64 `json:"accesses"`
	// Faults/Major/Refaults/Evictions are the node's share of the osim
	// event streams. Each event charges exactly one node, so these sum to
	// the mapping and file counters.
	Faults    int64 `json:"faults"`
	Major     int64 `json:"major"`
	Refaults  int64 `json:"refaults,omitempty"`
	Evictions int64 `json:"evictions,omitempty"`
	// FirstClock is the OS access clock of the node's first access
	// (0 = never accessed, e.g. evicted without being touched here).
	FirstClock int64 `json:"first_clock,omitempty"`
}

// Edge is one undirected affinity edge between Nodes[A] and Nodes[B]
// (A < B). Weight is the decayed affinity used for ranking and scoring;
// Co and Trans are the raw (undecayed) event counts, which reconcile
// exactly against the graph totals.
type Edge struct {
	A      int32   `json:"a"`
	B      int32   `json:"b"`
	Weight float64 `json:"weight"`
	Co     int64   `json:"co"`
	Trans  int64   `json:"trans,omitempty"`
}

// Window is one completed co-residency window of the log: the distinct
// nodes accessed during WindowEvents consecutive coarse accesses. A
// pressure reclaim (osim.EvictPressure — the serve harness's inter-burst
// eviction) force-rotates the window in progress, so windows never span
// a reclaim boundary.
type Window struct {
	// Start is the OS access clock at the window's first event.
	Start int64 `json:"start_clock"`
	// Events is the window's coarse access count (the last window of a
	// run, or one cut short by a pressure reclaim, may be shorter than
	// Config.WindowEvents).
	Events int `json:"events"`
	// Pressure reports that a pressure reclaim immediately preceded the
	// window — the scorecard replay applies its inter-window reclaim at
	// exactly these boundaries, mirroring the measured run's bursts.
	Pressure bool `json:"pressure,omitempty"`
	// Nodes indexes Graph.Nodes, in first-access order.
	Nodes []int32 `json:"nodes"`
}

// Graph is the serializable affinity result of one (or several merged)
// recorded runs.
type Graph struct {
	Schema string `json:"schema"`
	// Workload and Layout describe what was recorded ("serve-api", "cu").
	Workload string `json:"workload,omitempty"`
	Layout   string `json:"layout,omitempty"`
	FileSize int64  `json:"file_size"`
	Pages    int    `json:"pages"`
	Config   Config `json:"config"`

	// Stream totals. Faults/Major/Refaults reconcile with the observed
	// osim.Mapping, Evictions with the file; AccessEvents counts coarse
	// accesses, Windows completed windows.
	AccessEvents int64 `json:"access_events"`
	Faults       int64 `json:"faults"`
	Major        int64 `json:"major"`
	Refaults     int64 `json:"refaults,omitempty"`
	Evictions    int64 `json:"evictions,omitempty"`
	Windows      int64 `json:"windows"`

	// Edge-event totals: every transition and co-occurrence lands on
	// exactly one edge or in the Pruned* buckets, so
	// sum(Edges.Trans)+PrunedTrans == Transitions and
	// sum(Edges.Co)+PrunedCo == Cooccurrences.
	Transitions   int64 `json:"transitions"`
	Cooccurrences int64 `json:"cooccurrences"`
	PrunedEdges   int64 `json:"pruned_edges,omitempty"`
	PrunedCo      int64 `json:"pruned_co,omitempty"`
	PrunedTrans   int64 `json:"pruned_trans,omitempty"`
	// PrunedWeight is the decayed weight removed by edge-budget pruning
	// (reported so bounded recording is never a silent truncation).
	PrunedWeight float64 `json:"pruned_weight,omitempty"`
	// DroppedWindows counts windows aged out of the bounded log;
	// OverflowEvents accesses whose window membership was dropped by
	// MaxWindowSymbols.
	DroppedWindows int64 `json:"dropped_windows,omitempty"`
	OverflowEvents int64 `json:"overflow_events,omitempty"`

	// Sections reconciles with osim's per-section fault and eviction
	// counters, exactly like the attribution table's totals.
	Sections []attrib.SectionTotal `json:"sections"`
	// Nodes lists every symbol with any activity; Edges is sorted by
	// Weight descending (ties: A, then B ascending).
	Nodes []Node `json:"nodes"`
	Edges []Edge `json:"edges"`
	// WindowLog is the retained co-residency window history, oldest
	// first — the input of the scorecard replay and the trace export.
	WindowLog []Window `json:"window_log,omitempty"`
}

// Section returns the named section total (zero value if absent).
func (g *Graph) Section(name string) attrib.SectionTotal {
	for _, s := range g.Sections {
		if s.Section == name {
			return s
		}
	}
	return attrib.SectionTotal{Section: name}
}

// Node returns the named node and whether it exists.
func (g *Graph) Node(name string) (Node, bool) {
	for _, n := range g.Nodes {
		if n.Name == name {
			return n, true
		}
	}
	return Node{}, false
}

// TotalWeight sums the surviving edge weights plus the pruned weight —
// the graph's full recorded affinity mass.
func (g *Graph) TotalWeight() float64 {
	w := g.PrunedWeight
	for _, e := range g.Edges {
		w += e.Weight
	}
	return w
}

type edgeKey struct{ a, b int32 }

type edgeCount struct {
	weight float64
	co     int64
	trans  int64
}

// Recorder folds one mapping's access, fault and eviction streams into an
// affinity graph. It implements osim.AccessObserver, osim.FaultObserver
// and osim.EvictionObserver; attach it to a Mapping before the first
// touch. Not safe for concurrent use (one recorder per mapping).
type Recorder struct {
	ix  *attrib.Index
	cfg Config

	nodes   []Node  // symbol nodes, then lazily allocated pseudo-nodes
	pageRep []int32 // page -> node id of the page's first symbol, -1 if none
	pseudo  map[int]int32

	edges     map[edgeKey]*edgeCount
	bySection map[int]*attrib.SectionTotal
	// evictedPage mirrors osim's re-fault arming: set by pressure/budget
	// evictions, cleared by DropCaches.
	evictedPage []bool

	accessEvents, faults, major, refaults, evictions int64
	transitions, cooccur, windows                    int64
	droppedWindows, overflowEvents                   int64
	prunedEdges, prunedCo, prunedTrans               int64
	prunedWeight                                     float64

	winNodes []int32
	winSeen  map[int32]bool
	winStart int64
	// curPressure marks the window in progress as preceded by a pressure
	// reclaim (set when EvictPressure force-rotates the previous one).
	curPressure bool
	winEvents   int
	prevNode    int32
	log         []Window

	finished bool
}

// NewRecorder creates a recorder over the layout index with the given
// config (zero value = defaults).
func NewRecorder(ix *attrib.Index, cfg Config) *Recorder {
	r := &Recorder{
		ix:          ix,
		cfg:         cfg.withDefaults(),
		nodes:       make([]Node, len(ix.Symbols())),
		pageRep:     make([]int32, ix.Pages()),
		pseudo:      make(map[int]int32),
		edges:       make(map[edgeKey]*edgeCount),
		bySection:   make(map[int]*attrib.SectionTotal),
		evictedPage: make([]bool, ix.Pages()),
		winSeen:     make(map[int32]bool),
		prevNode:    -1,
	}
	for i, s := range ix.Symbols() {
		r.nodes[i] = Node{Name: s.Name, Type: s.Type, Kind: s.Kind, Section: s.Section, Off: s.Off, Len: s.Len}
	}
	for p := range r.pageRep {
		if syms := ix.SymbolsOnPage(p); len(syms) > 0 {
			r.pageRep[p] = int32(syms[0])
		} else {
			r.pageRep[p] = -1
		}
	}
	return r
}

// nodeFor resolves an event to the single node it charges: the symbol
// containing the event's byte offset, else the page's representative
// symbol (the first symbol overlapping it — e.g. when the offset lands in
// padding between symbols), else the per-section pseudo-node for pages no
// indexed symbol covers.
func (r *Recorder) nodeFor(off int64, page, section int) int32 {
	if si := r.ix.SymbolAt(off); si >= 0 {
		return int32(si)
	}
	if page >= 0 && page < len(r.pageRep) {
		if id := r.pageRep[page]; id >= 0 {
			return id
		}
	}
	if id, ok := r.pseudo[section]; ok {
		return id
	}
	id := int32(len(r.nodes))
	sec := r.ix.SectionName(section)
	r.nodes = append(r.nodes, Node{
		Name: "<unattributed:" + sec + ">", Kind: KindUnattributed, Section: sec,
	})
	r.pseudo[section] = id
	return id
}

func (r *Recorder) section(idx int) *attrib.SectionTotal {
	st := r.bySection[idx]
	if st == nil {
		st = &attrib.SectionTotal{Section: r.ix.SectionName(idx)}
		r.bySection[idx] = st
	}
	return st
}

// OnAccess folds one coarse page access into the window and the
// transition edges.
func (r *Recorder) OnAccess(ev osim.AccessEvent) {
	id := r.nodeFor(ev.Off, ev.Page, ev.Section)
	n := &r.nodes[id]
	n.Accesses++
	if n.FirstClock == 0 {
		n.FirstClock = ev.Clock
	}
	r.accessEvents++
	if r.winEvents == 0 {
		r.winStart = ev.Clock
	}
	if !r.winSeen[id] {
		if len(r.winNodes) < r.cfg.MaxWindowSymbols {
			r.winSeen[id] = true
			r.winNodes = append(r.winNodes, id)
		} else {
			r.overflowEvents++
		}
	}
	if r.prevNode >= 0 && r.prevNode != id {
		e := r.edge(r.prevNode, id)
		e.weight++
		e.trans++
		r.transitions++
	}
	r.prevNode = id
	r.winEvents++
	if r.winEvents >= r.cfg.WindowEvents {
		r.rotate()
	}
}

// OnFault charges one fault to the faulting page's node and its section
// total (the event's own classification, so the totals reconcile with
// osim's counters by construction).
func (r *Recorder) OnFault(ev osim.FaultEvent) {
	st := r.section(ev.Section)
	if ev.Major {
		st.Major++
		r.major++
	} else {
		st.Minor++
	}
	st.IONanos += ev.IONanos
	r.faults++
	id := r.nodeFor(ev.Off, ev.Page, ev.Section)
	n := &r.nodes[id]
	n.Faults++
	if ev.Major {
		n.Major++
		if ev.Page >= 0 && ev.Page < len(r.evictedPage) && r.evictedPage[ev.Page] {
			st.Refaults++
			n.Refaults++
			r.refaults++
		}
	}
}

// OnEvict charges one eviction and arms (or, for DropCaches, disarms)
// the page's re-fault tracking. A pressure eviction also closes the
// window in progress and flags the next one, so the window log carries
// the run's reclaim boundaries for the scorecard replay.
func (r *Recorder) OnEvict(ev osim.EvictionEvent) {
	st := r.section(ev.Section)
	st.Evicted++
	r.evictions++
	if ev.Page >= 0 && ev.Page < len(r.evictedPage) {
		r.evictedPage[ev.Page] = ev.Cause != osim.EvictDrop
	}
	r.nodes[r.nodeFor(ev.Off, ev.Page, ev.Section)].Evictions++
	if ev.Cause == osim.EvictPressure {
		r.rotate()
		r.curPressure = true
	}
}

func (r *Recorder) edge(a, b int32) *edgeCount {
	if a > b {
		a, b = b, a
	}
	k := edgeKey{a, b}
	e := r.edges[k]
	if e == nil {
		e = &edgeCount{}
		r.edges[k] = e
	}
	return e
}

// rotate completes the current window: age every edge by the decay,
// fold the window's co-occurrence pairs in, log the window, and enforce
// the edge budget.
func (r *Recorder) rotate() {
	if r.winEvents == 0 {
		return
	}
	for _, e := range r.edges {
		e.weight *= r.cfg.Decay
	}
	for i := 0; i < len(r.winNodes); i++ {
		for j := i + 1; j < len(r.winNodes); j++ {
			e := r.edge(r.winNodes[i], r.winNodes[j])
			e.weight++
			e.co++
			r.cooccur++
		}
	}
	r.windows++
	r.log = append(r.log, Window{
		Start:    r.winStart,
		Events:   r.winEvents,
		Pressure: r.curPressure,
		Nodes:    append([]int32(nil), r.winNodes...),
	})
	r.curPressure = false
	if len(r.log) > r.cfg.MaxWindows {
		n := copy(r.log, r.log[len(r.log)-r.cfg.MaxWindows:])
		r.log = r.log[:n]
		r.droppedWindows++
	}
	r.prune()
	r.winNodes = r.winNodes[:0]
	for k := range r.winSeen {
		delete(r.winSeen, k)
	}
	r.winEvents = 0
}

// prune enforces the edge budget deterministically: edges sorted by
// weight descending (ties by node ids) survive; the rest move their raw
// counts into the Pruned* buckets so the totals stay exact.
func (r *Recorder) prune() {
	if len(r.edges) <= r.cfg.MaxEdges {
		return
	}
	type kv struct {
		k edgeKey
		e *edgeCount
	}
	all := make([]kv, 0, len(r.edges))
	for k, e := range r.edges {
		all = append(all, kv{k, e})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].e.weight != all[j].e.weight {
			return all[i].e.weight > all[j].e.weight
		}
		if all[i].k.a != all[j].k.a {
			return all[i].k.a < all[j].k.a
		}
		return all[i].k.b < all[j].k.b
	})
	for _, v := range all[r.cfg.MaxEdges:] {
		r.prunedEdges++
		r.prunedWeight += v.e.weight
		r.prunedCo += v.e.co
		r.prunedTrans += v.e.trans
		delete(r.edges, v.k)
	}
}

// Finish completes the trailing partial window. Call once after the run;
// Graph calls it implicitly.
func (r *Recorder) Finish() {
	if r.finished {
		return
	}
	r.finished = true
	r.rotate()
}

// Graph assembles the affinity graph: active nodes (any event charged),
// edges sorted by weight descending, and the retained window log, all
// re-indexed to the emitted node order.
func (r *Recorder) Graph() *Graph {
	r.Finish()
	g := &Graph{
		Schema:         GraphSchema,
		FileSize:       r.ix.FileSize,
		Pages:          r.ix.Pages(),
		Config:         r.cfg,
		AccessEvents:   r.accessEvents,
		Faults:         r.faults,
		Major:          r.major,
		Refaults:       r.refaults,
		Evictions:      r.evictions,
		Windows:        r.windows,
		Transitions:    r.transitions,
		Cooccurrences:  r.cooccur,
		PrunedEdges:    r.prunedEdges,
		PrunedCo:       r.prunedCo,
		PrunedTrans:    r.prunedTrans,
		PrunedWeight:   r.prunedWeight,
		DroppedWindows: r.droppedWindows,
		OverflowEvents: r.overflowEvents,
	}
	var secIdxs []int
	for i := range r.bySection {
		secIdxs = append(secIdxs, i)
	}
	sort.Ints(secIdxs)
	for _, i := range secIdxs {
		g.Sections = append(g.Sections, *r.bySection[i])
	}
	remap := make([]int32, len(r.nodes))
	for i, n := range r.nodes {
		if n.Accesses > 0 || n.Faults > 0 || n.Evictions > 0 {
			remap[i] = int32(len(g.Nodes))
			g.Nodes = append(g.Nodes, n)
		} else {
			remap[i] = -1
		}
	}
	for k, e := range r.edges {
		g.Edges = append(g.Edges, Edge{
			A: remap[k.a], B: remap[k.b], Weight: e.weight, Co: e.co, Trans: e.trans,
		})
	}
	rankEdges(g.Edges)
	for _, w := range r.log {
		nw := Window{Start: w.Start, Events: w.Events, Pressure: w.Pressure, Nodes: make([]int32, len(w.Nodes))}
		for i, id := range w.Nodes {
			nw.Nodes[i] = remap[id]
		}
		g.WindowLog = append(g.WindowLog, nw)
	}
	return g
}

func rankEdges(es []Edge) {
	sort.SliceStable(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.Weight != b.Weight {
			return a.Weight > b.Weight
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
}

// Merge combines affinity graphs — e.g. the per-iteration graphs of one
// eval entry — by node name: node counts add, edges add weight and raw
// counts keyed by their endpoint names, window logs concatenate in
// argument order (re-bounded by the merged config). Nil graphs are
// skipped. Node offsets come from the first graph naming the node, so
// merging graphs of different layouts is meaningful only for the
// name-keyed counts.
func Merge(graphs ...*Graph) *Graph {
	out := &Graph{Schema: GraphSchema}
	nodeIdx := make(map[string]int32)
	secIdx := make(map[string]int)
	type nameEdge struct{ a, b int32 }
	edgeIdx := make(map[nameEdge]int)
	for _, g := range graphs {
		if g == nil {
			continue
		}
		if out.Workload == "" {
			out.Workload, out.Layout = g.Workload, g.Layout
		}
		if out.Config == (Config{}) {
			out.Config = g.Config
		}
		if g.FileSize > out.FileSize {
			out.FileSize = g.FileSize
		}
		if g.Pages > out.Pages {
			out.Pages = g.Pages
		}
		out.AccessEvents += g.AccessEvents
		out.Faults += g.Faults
		out.Major += g.Major
		out.Refaults += g.Refaults
		out.Evictions += g.Evictions
		out.Windows += g.Windows
		out.Transitions += g.Transitions
		out.Cooccurrences += g.Cooccurrences
		out.PrunedEdges += g.PrunedEdges
		out.PrunedCo += g.PrunedCo
		out.PrunedTrans += g.PrunedTrans
		out.PrunedWeight += g.PrunedWeight
		out.DroppedWindows += g.DroppedWindows
		out.OverflowEvents += g.OverflowEvents
		for _, s := range g.Sections {
			i, ok := secIdx[s.Section]
			if !ok {
				secIdx[s.Section] = len(out.Sections)
				out.Sections = append(out.Sections, s)
				continue
			}
			t := &out.Sections[i]
			t.Major += s.Major
			t.Minor += s.Minor
			t.IONanos += s.IONanos
			t.Evicted += s.Evicted
			t.Refaults += s.Refaults
		}
		local := make([]int32, len(g.Nodes))
		for i, n := range g.Nodes {
			id, ok := nodeIdx[n.Name]
			if !ok {
				id = int32(len(out.Nodes))
				nodeIdx[n.Name] = id
				out.Nodes = append(out.Nodes, n)
				local[i] = id
				continue
			}
			local[i] = id
			m := &out.Nodes[id]
			m.Accesses += n.Accesses
			m.Faults += n.Faults
			m.Major += n.Major
			m.Refaults += n.Refaults
			m.Evictions += n.Evictions
			if n.FirstClock > 0 && (m.FirstClock == 0 || n.FirstClock < m.FirstClock) {
				m.FirstClock = n.FirstClock
			}
		}
		for _, e := range g.Edges {
			a, b := local[e.A], local[e.B]
			if a > b {
				a, b = b, a
			}
			k := nameEdge{a, b}
			i, ok := edgeIdx[k]
			if !ok {
				edgeIdx[k] = len(out.Edges)
				out.Edges = append(out.Edges, Edge{A: a, B: b, Weight: e.Weight, Co: e.Co, Trans: e.Trans})
				continue
			}
			out.Edges[i].Weight += e.Weight
			out.Edges[i].Co += e.Co
			out.Edges[i].Trans += e.Trans
		}
		for _, w := range g.WindowLog {
			nw := Window{Start: w.Start, Events: w.Events, Pressure: w.Pressure, Nodes: make([]int32, len(w.Nodes))}
			for i, id := range w.Nodes {
				nw.Nodes[i] = local[id]
			}
			out.WindowLog = append(out.WindowLog, nw)
		}
	}
	sort.Slice(out.Sections, func(i, j int) bool { return out.Sections[i].Section < out.Sections[j].Section })
	rankEdges(out.Edges)
	cfg := out.Config.withDefaults()
	if len(out.WindowLog) > cfg.MaxWindows {
		out.DroppedWindows += int64(len(out.WindowLog) - cfg.MaxWindows)
		out.WindowLog = append([]Window(nil), out.WindowLog[len(out.WindowLog)-cfg.MaxWindows:]...)
	}
	return out
}
