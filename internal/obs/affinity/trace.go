package affinity

// Chrome trace-event export: the co-residency window log as a trace
// chrome://tracing and Perfetto load directly. The time axis is the OS
// logical access clock (rendered as microseconds). Each window's distinct
// symbols become stacked duration events — lane i carries the i-th
// distinct symbol of each window, so the occupied lane depth reads as
// the working-set width over time — plus a counter track with the
// window's symbol count.

import (
	"encoding/json"
	"fmt"
	"io"
)

type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

const (
	tracePid   = 1
	counterTid = 1
	laneTid0   = 2
)

// WriteChromeTrace writes the graph's window log as Chrome trace-event
// JSON: a "window symbols" counter track plus co-residency lanes.
func WriteChromeTrace(w io.Writer, g *Graph) error {
	tf := traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}
	proc := "nimage affinity"
	if g.Workload != "" {
		proc = fmt.Sprintf("nimage affinity %s (%s)", g.Workload, g.Layout)
	}
	tf.TraceEvents = append(tf.TraceEvents,
		traceEvent{Name: "process_name", Ph: "M", Pid: tracePid, Tid: counterTid,
			Args: map[string]any{"name": proc}},
		traceEvent{Name: "thread_name", Ph: "M", Pid: tracePid, Tid: counterTid,
			Args: map[string]any{"name": "window symbols"}},
	)
	maxDepth := 0
	for wi, win := range g.WindowLog {
		ts := float64(win.Start)
		end := ts + float64(win.Events)
		if wi+1 < len(g.WindowLog) && float64(g.WindowLog[wi+1].Start) > ts {
			end = float64(g.WindowLog[wi+1].Start)
		}
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "window symbols", Ph: "C", Cat: "coresidency",
			Ts: ts, Pid: tracePid, Tid: counterTid,
			Args: map[string]any{"symbols": len(win.Nodes)},
		})
		for depth, id := range win.Nodes {
			if int(id) >= len(g.Nodes) {
				continue
			}
			n := g.Nodes[id]
			if depth+1 > maxDepth {
				maxDepth = depth + 1
			}
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: n.Name, Ph: "X", Cat: "coresidency",
				Ts: ts, Dur: end - ts, Pid: tracePid, Tid: laneTid0 + depth,
				Args: map[string]any{"kind": n.Kind, "section": n.Section},
			})
		}
	}
	for d := 0; d < maxDepth; d++ {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: tracePid, Tid: laneTid0 + d,
			Args: map[string]any{"name": fmt.Sprintf("co-resident %02d", d)},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(&tf); err != nil {
		return fmt.Errorf("affinity: writing chrome trace: %w", err)
	}
	return nil
}
