package affinity

// GraphViz export: the top affinity edges as an undirected DOT graph,
// for `dot -Tsvg` / `neato`. Node fill distinguishes sections; edge
// penwidth scales with affinity weight. Output is deterministic (edges
// in rank order, nodes in first-use order).

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT writes the top edges of the graph as GraphViz DOT. top <= 0
// writes every edge.
func WriteDOT(w io.Writer, g *Graph, top int) error {
	edges := g.Edges
	if top > 0 && top < len(edges) {
		edges = edges[:top]
	}
	var b strings.Builder
	name := g.Workload
	if g.Layout != "" {
		name += " " + g.Layout
	}
	fmt.Fprintf(&b, "graph affinity {\n")
	fmt.Fprintf(&b, "  label=%q; labelloc=top;\n", strings.TrimSpace(name+" affinity"))
	fmt.Fprintf(&b, "  node [shape=box, style=filled, fontsize=10];\n")
	var maxW float64
	for _, e := range edges {
		if e.Weight > maxW {
			maxW = e.Weight
		}
	}
	emitted := make(map[int32]bool)
	emitNode := func(id int32) {
		if emitted[id] {
			return
		}
		emitted[id] = true
		n := g.Nodes[id]
		fill := "lightgray"
		switch n.Section {
		case ".text":
			fill = "lightblue"
		case ".svm_heap":
			fill = "lightsalmon"
		}
		fmt.Fprintf(&b, "  n%d [label=%q, fillcolor=%q];\n",
			id, fmt.Sprintf("%s\n(%s)", n.Name, n.Kind), fill)
	}
	for _, e := range edges {
		emitNode(e.A)
		emitNode(e.B)
	}
	for _, e := range edges {
		pen := 0.5
		if maxW > 0 {
			pen = 0.5 + 2.5*e.Weight/maxW
		}
		fmt.Fprintf(&b, "  n%d -- n%d [penwidth=%.2f, label=%q];\n",
			e.A, e.B, pen, fmt.Sprintf("%.1f", e.Weight))
	}
	fmt.Fprintf(&b, "}\n")
	_, err := io.WriteString(w, b.String())
	if err != nil {
		return fmt.Errorf("affinity: writing dot: %w", err)
	}
	return nil
}
