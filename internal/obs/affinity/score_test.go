package affinity

import (
	"testing"

	"nimage/internal/obs/attrib"
	"nimage/internal/osim"
)

// scoreGraph records a stream where pages 0 and 2 (nodes <header>/A and
// hub/O2 areas) are always hot together across many windows.
func scoreGraph(t *testing.T) *Graph {
	t.Helper()
	r := NewRecorder(testIndex(), Config{WindowEvents: 4})
	clock := int64(0)
	for w := 0; w < 8; w++ {
		for _, p := range []int{0, 2, 0, 2} {
			clock++
			access(r, p, clock)
		}
	}
	g := r.Graph()
	g.Workload = "w"
	return g
}

func placeAt(offs map[string]int64) *Placement {
	var syms []attrib.Symbol
	for name, off := range offs {
		syms = append(syms, attrib.Symbol{Name: name, Off: off, Len: 64})
	}
	return NewPlacement(syms)
}

// TestScoreLocalityOrdering checks that a layout packing the co-accessed
// symbols onto one page beats a layout scattering them, on every
// scorecard dimension.
func TestScoreLocalityOrdering(t *testing.T) {
	g := scoreGraph(t)
	packed := placeAt(map[string]int64{
		"<header>": 0, "hub:O1": 128, // same page
	})
	scattered := placeAt(map[string]int64{
		"<header>": 0, "hub:O1": 10 * osim.PageSize, // 10 pages apart
	})
	ps := Score(g, packed, "packed", 50)
	ss := Score(g, scattered, "scattered", 50)
	if ps.MappedNodes != 2 || ss.MappedNodes != 2 {
		t.Fatalf("mapped nodes: packed %d scattered %d", ps.MappedNodes, ss.MappedNodes)
	}
	if ps.LocalityScore <= ss.LocalityScore {
		t.Fatalf("packed locality %v <= scattered %v", ps.LocalityScore, ss.LocalityScore)
	}
	if ps.LocalityScore != 1 {
		t.Fatalf("packed locality = %v, want 1 (all weight same-page)", ps.LocalityScore)
	}
	if ps.AvgWindowPages >= ss.AvgWindowPages {
		t.Fatalf("packed window pages %v >= scattered %v", ps.AvgWindowPages, ss.AvgWindowPages)
	}
	// Under 50% inter-window pressure the scattered layout's two pages
	// churn (one gets reclaimed each gap and touched again); the packed
	// layout's single page survives as the hottest page.
	if ps.PredictedRefaults >= ss.PredictedRefaults {
		t.Fatalf("packed predicted refaults %d >= scattered %d", ps.PredictedRefaults, ss.PredictedRefaults)
	}
	RefaultFactors(ss, []*Scorecard{ps, ss})
	if ps.PredictedRefaultFactor <= 1 || ss.PredictedRefaultFactor != 1 {
		t.Fatalf("refault factors: packed %v scattered %v", ps.PredictedRefaultFactor, ss.PredictedRefaultFactor)
	}
}

// TestScoreUnmappedNodes: a placement naming none of the graph's nodes
// yields a zeroed card, not a crash.
func TestScoreUnmappedNodes(t *testing.T) {
	g := scoreGraph(t)
	sc := Score(g, placeAt(map[string]int64{"unknown": 0}), "empty", 30)
	if sc.MappedNodes != 0 || sc.LocalityScore != 0 || sc.PredictedRefaults != 0 || sc.PredictedColdPages != 0 {
		t.Fatalf("empty placement card: %+v", sc)
	}
	if sc.TotalNodes == 0 {
		t.Fatal("total nodes should still count the graph's nodes")
	}
}
