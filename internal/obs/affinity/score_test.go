package affinity

import (
	"testing"

	"nimage/internal/obs/attrib"
	"nimage/internal/osim"
)

// scoreGraph records a stream where pages 0 and 2 (nodes <header>/A and
// hub/O2 areas) are always hot together across many windows, with a
// pressure reclaim between consecutive windows (the boundaries the
// refault replay reclaims at, like the serve harness's inter-burst
// evictions).
func scoreGraph(t *testing.T) *Graph {
	t.Helper()
	r := NewRecorder(testIndex(), Config{WindowEvents: 4})
	clock := int64(0)
	for w := 0; w < 8; w++ {
		if w > 0 {
			r.OnEvict(osim.EvictionEvent{Off: 0, Page: 0, Section: 0, Cause: osim.EvictPressure})
		}
		for _, p := range []int{0, 2, 0, 2} {
			clock++
			access(r, p, clock)
		}
	}
	g := r.Graph()
	g.Workload = "w"
	return g
}

func placeAt(offs map[string]int64) *Placement {
	var syms []attrib.Symbol
	for name, off := range offs {
		syms = append(syms, attrib.Symbol{Name: name, Off: off, Len: 64})
	}
	return NewPlacement(syms)
}

// TestScoreLocalityOrdering checks that a layout packing the co-accessed
// symbols onto one page beats a layout scattering them, on every
// scorecard dimension.
func TestScoreLocalityOrdering(t *testing.T) {
	g := scoreGraph(t)
	packed := placeAt(map[string]int64{
		"<header>": 0, "hub:O1": 128, // same page
	})
	scattered := placeAt(map[string]int64{
		"<header>": 0, "hub:O1": 10 * osim.PageSize, // 10 pages apart
	})
	ps, err := Score(g, packed, "packed", 50, 0)
	if err != nil {
		t.Fatalf("score packed: %v", err)
	}
	ss, err := Score(g, scattered, "scattered", 50, 0)
	if err != nil {
		t.Fatalf("score scattered: %v", err)
	}
	if ps.MappedNodes != 2 || ss.MappedNodes != 2 {
		t.Fatalf("mapped nodes: packed %d scattered %d", ps.MappedNodes, ss.MappedNodes)
	}
	if ps.LocalityScore <= ss.LocalityScore {
		t.Fatalf("packed locality %v <= scattered %v", ps.LocalityScore, ss.LocalityScore)
	}
	if ps.LocalityScore != 1 {
		t.Fatalf("packed locality = %v, want 1 (all weight same-page)", ps.LocalityScore)
	}
	if ps.AvgWindowPages >= ss.AvgWindowPages {
		t.Fatalf("packed window pages %v >= scattered %v", ps.AvgWindowPages, ss.AvgWindowPages)
	}
	// Under 50% inter-window pressure the scattered layout's two pages
	// churn (one gets reclaimed each gap and touched again); the packed
	// layout's single page survives as the hottest page.
	if ps.PredictedRefaults >= ss.PredictedRefaults {
		t.Fatalf("packed predicted refaults %d >= scattered %d", ps.PredictedRefaults, ss.PredictedRefaults)
	}
	RefaultFactors(ss, []*Scorecard{ps, ss})
	if ps.PredictedRefaultFactor <= 1 || ss.PredictedRefaultFactor != 1 {
		t.Fatalf("refault factors: packed %v scattered %v", ps.PredictedRefaultFactor, ss.PredictedRefaultFactor)
	}
}

// TestScoreUnmappedNodes: a placement naming none of the graph's nodes
// yields a zeroed card, not a crash.
func TestScoreUnmappedNodes(t *testing.T) {
	g := scoreGraph(t)
	sc, err := Score(g, placeAt(map[string]int64{"unknown": 0}), "empty", 30, 0)
	if err != nil {
		t.Fatalf("score empty placement: %v", err)
	}
	if sc.MappedNodes != 0 || sc.LocalityScore != 0 || sc.PredictedRefaults != 0 || sc.PredictedColdPages != 0 {
		t.Fatalf("empty placement card: %+v", sc)
	}
	if sc.TotalNodes == 0 {
		t.Fatal("total nodes should still count the graph's nodes")
	}
}

// TestScorePressureBounds: Score rejects pressure percentages outside
// [0, 100] and accepts the boundaries, mirroring the CLI's
// reject-don't-clamp flag validation.
func TestScorePressureBounds(t *testing.T) {
	g := scoreGraph(t)
	layout := placeAt(map[string]int64{"<header>": 0, "hub:O1": 128})
	cases := []struct {
		name     string
		pressure int
		wantErr  bool
	}{
		{"negative", -1, true},
		{"over hundred", 101, true},
		{"far negative", -100, true},
		{"far over", 1000, true},
		{"zero", 0, false},
		{"hundred", 100, false},
		{"interior", 50, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, err := Score(g, layout, "s", tc.pressure, 0)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("pressure %d: want error, got card %+v", tc.pressure, sc)
				}
				if sc != nil {
					t.Fatalf("pressure %d: error should carry a nil card, got %+v", tc.pressure, sc)
				}
				return
			}
			if err != nil {
				t.Fatalf("pressure %d: %v", tc.pressure, err)
			}
			if sc.PressurePct != tc.pressure {
				t.Fatalf("pressure %d: card records %d", tc.pressure, sc.PressurePct)
			}
		})
	}
}

// TestScoreCacheBudget pins the budget half of the replay: a negative
// budget is rejected; under a one-page budget and zero pressure, a
// layout scattering the window's two symbols churns (each touch evicts
// the other page) while a packed layout fits and never refaults.
func TestScoreCacheBudget(t *testing.T) {
	g := scoreGraph(t)
	scattered := placeAt(map[string]int64{
		"<header>": 0, "hub:O1": 10 * osim.PageSize,
	})
	packed := placeAt(map[string]int64{
		"<header>": 0, "hub:O1": 128,
	})
	if sc, err := Score(g, scattered, "s", 0, -1); err == nil {
		t.Fatalf("negative budget accepted: %+v", sc)
	}
	churn, err := Score(g, scattered, "s", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 8 windows, 2 pages each: windows 2-8 refault both pages.
	if want := int64(7 * 2); churn.PredictedRefaults != want {
		t.Fatalf("budget churn predicted %d refaults, want %d", churn.PredictedRefaults, want)
	}
	if churn.CacheBudget != 1 {
		t.Fatalf("card records budget %d, want 1", churn.CacheBudget)
	}
	fit, err := Score(g, packed, "s", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fit.PredictedRefaults != 0 {
		t.Fatalf("fitting layout predicted %d refaults, want 0", fit.PredictedRefaults)
	}
}

// TestScorePressureExtremes pins the replay semantics at the accepted
// boundaries: 0%% pressure never evicts (no refaults possible), 100%%
// pressure reclaims every resident page between windows, so each window
// after the first refaults its full working set.
func TestScorePressureExtremes(t *testing.T) {
	g := scoreGraph(t)
	layout := placeAt(map[string]int64{
		"<header>": 0, "hub:O1": 10 * osim.PageSize,
	})
	relaxed, err := Score(g, layout, "s", 0, 0)
	if err != nil {
		t.Fatalf("score at 0%%: %v", err)
	}
	if relaxed.PredictedRefaults != 0 {
		t.Fatalf("0%% pressure predicted %d refaults, want 0", relaxed.PredictedRefaults)
	}
	crushed, err := Score(g, layout, "s", 100, 0)
	if err != nil {
		t.Fatalf("score at 100%%: %v", err)
	}
	// 8 windows touch 2 pages each; all but the first window's pages are
	// refaults under total reclaim.
	if want := int64(7 * 2); crushed.PredictedRefaults != want {
		t.Fatalf("100%% pressure predicted %d refaults, want %d", crushed.PredictedRefaults, want)
	}
	if crushed.PredictedColdPages != relaxed.PredictedColdPages {
		t.Fatalf("cold pages differ by pressure: %d vs %d", crushed.PredictedColdPages, relaxed.PredictedColdPages)
	}
}
