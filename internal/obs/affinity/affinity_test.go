package affinity

import (
	"bytes"
	"reflect"
	"testing"

	"nimage/internal/obs/attrib"
	"nimage/internal/osim"
)

// testIndex mirrors the attrib package's test layout: a 4-page file,
// two sections, CUs on pages 0-1 and heap objects on pages 2-3.
func testIndex() *attrib.Index {
	sections := []osim.Section{
		{Name: ".text", Off: 0, Len: 8192},
		{Name: ".svm_heap", Off: 8192, Len: 8192},
	}
	syms := []attrib.Symbol{
		{Name: "<header>", Kind: attrib.KindHeader, Off: 0, Len: 64},
		{Name: "A.run(0)", Type: "A", Kind: attrib.KindCU, Section: ".text", Off: 64, Len: 6000},
		{Name: "B.run(0)", Type: "B", Kind: attrib.KindCU, Section: ".text", Off: 6064, Len: 2128},
		{Name: "hub:O1", Type: "O1", Kind: attrib.KindObject, Section: ".svm_heap", Off: 8192, Len: 100},
		{Name: "O2#0", Type: "O2", Kind: attrib.KindObject, Section: ".svm_heap", Off: 8292, Len: 8000},
	}
	return attrib.NewIndex(16384, sections, syms)
}

func access(r *Recorder, page int, clock int64) {
	sec := 0
	if page >= 2 {
		sec = 1
	}
	r.OnAccess(osim.AccessEvent{Off: int64(page) * osim.PageSize, Page: page, Section: sec, Clock: clock})
}

// TestRecorderWindowsAndEdges drives a hand-built access sequence and
// checks window rotation, co-occurrence, transition and decay mechanics.
func TestRecorderWindowsAndEdges(t *testing.T) {
	r := NewRecorder(testIndex(), Config{WindowEvents: 4, Decay: 0.5})
	// Window 1: pages 0,1,0,1 -> nodes <header>(page0 rep) and B.run(0)
	// (page1 rep: first symbol overlapping page 1 is A.run, off 64 len
	// 6000 covers pages 0 and 1 -> rep of page 1 is A.run? A ends at
	// 6064, page 1 is [4096,8192): A overlaps -> rep is A.run(0)).
	for i, p := range []int{0, 1, 0, 1} {
		access(r, p, int64(i+1))
	}
	// Window 2: pages 2,3,2,3 -> heap nodes.
	for i, p := range []int{2, 3, 2, 3} {
		access(r, p, int64(i+5))
	}
	g := r.Graph()
	if g.Windows != 2 {
		t.Fatalf("windows = %d, want 2", g.Windows)
	}
	if g.AccessEvents != 8 {
		t.Fatalf("access events = %d, want 8", g.AccessEvents)
	}
	// 3 transitions per window plus the window-crossing 1->2 transition.
	if g.Transitions != 7 {
		t.Fatalf("transitions = %d, want 7", g.Transitions)
	}
	// Each window has 2 distinct nodes -> 1 co-occurrence pair each.
	if g.Cooccurrences != 2 {
		t.Fatalf("cooccurrences = %d, want 2", g.Cooccurrences)
	}
	// Raw counts reconcile: sum edge Co/Trans == totals (nothing pruned).
	var co, tr int64
	for _, e := range g.Edges {
		co += e.Co
		tr += e.Trans
	}
	if co != g.Cooccurrences || tr != g.Transitions {
		t.Fatalf("edge sums co=%d trans=%d, totals co=%d trans=%d", co, tr, g.Cooccurrences, g.Transitions)
	}
	// The header<->A edge accumulated 3 transitions + 1 co in window 1,
	// then decayed once at window 2's rotation: weight = 4*0.5 = 2.
	hdr, okH := g.Node("<header>")
	if !okH || hdr.Accesses != 2 {
		t.Fatalf("<header> node: %+v ok=%v", hdr, okH)
	}
	found := false
	for _, e := range g.Edges {
		a, b := g.Nodes[e.A].Name, g.Nodes[e.B].Name
		if (a == "<header>" && b == "A.run(0)") || (a == "A.run(0)" && b == "<header>") {
			found = true
			if e.Co != 1 || e.Trans != 3 {
				t.Fatalf("header-A edge co=%d trans=%d, want 1/3", e.Co, e.Trans)
			}
			// 3 transitions decay at window 1's rotation (1.5), the
			// co-occurrence adds after (2.5), window 2's rotation decays
			// again: 1.25.
			if e.Weight != 1.25 {
				t.Fatalf("header-A edge weight = %v, want 1.25", e.Weight)
			}
		}
	}
	if !found {
		t.Fatal("header-A edge missing")
	}
	if len(g.WindowLog) != 2 || len(g.WindowLog[0].Nodes) != 2 || g.WindowLog[0].Events != 4 {
		t.Fatalf("window log: %+v", g.WindowLog)
	}
}

// TestRecorderChargesOffsetSymbol: accesses resolve to the symbol
// containing the touched byte, not the page's representative — page 1 is
// represented by A.run(0), but a touch inside B.run(0)'s bytes on that
// page must charge B. Offsets in uncovered gaps still fall back to the
// page representative so every event charges exactly one node.
func TestRecorderChargesOffsetSymbol(t *testing.T) {
	r := NewRecorder(testIndex(), Config{WindowEvents: 4})
	// Page 1 spans [4096, 8192): A.run(0) covers [64, 6064), B.run(0)
	// covers [6064, 8192). Touch B's bytes, then A's, on the same page.
	r.OnAccess(osim.AccessEvent{Off: 6100, Page: 1, Section: 0, Clock: 1})
	r.OnAccess(osim.AccessEvent{Off: 5000, Page: 1, Section: 0, Clock: 2})
	r.OnFault(osim.FaultEvent{Off: 6100, Page: 1, Section: 0, Major: true})
	g := r.Graph()
	b, ok := g.Node("B.run(0)")
	if !ok || b.Accesses != 1 || b.Faults != 1 || b.FirstClock != 1 {
		t.Fatalf("B.run(0) node: %+v ok=%v", b, ok)
	}
	a, ok := g.Node("A.run(0)")
	if !ok || a.Accesses != 1 || a.Faults != 0 || a.FirstClock != 2 {
		t.Fatalf("A.run(0) node: %+v ok=%v", a, ok)
	}
}

// TestRecorderEdgeBudget fills the graph past MaxEdges and checks exact
// pruned accounting.
func TestRecorderEdgeBudget(t *testing.T) {
	r := NewRecorder(testIndex(), Config{WindowEvents: 2, MaxEdges: 1, Decay: 1})
	// Three windows over three distinct node pairs -> 3 edges, budget 1.
	for i, p := range []int{0, 2, 1, 3, 0, 3} {
		access(r, p, int64(i+1))
	}
	g := r.Graph()
	if len(g.Edges) != 1 {
		t.Fatalf("edges = %d, want 1 (budget)", len(g.Edges))
	}
	var co, tr int64
	for _, e := range g.Edges {
		co += e.Co
		tr += e.Trans
	}
	if co+g.PrunedCo != g.Cooccurrences {
		t.Fatalf("co %d + pruned %d != total %d", co, g.PrunedCo, g.Cooccurrences)
	}
	if tr+g.PrunedTrans != g.Transitions {
		t.Fatalf("trans %d + pruned %d != total %d", tr, g.PrunedTrans, g.Transitions)
	}
	if g.PrunedEdges == 0 || g.PrunedWeight <= 0 {
		t.Fatalf("pruning not accounted: edges=%d weight=%v", g.PrunedEdges, g.PrunedWeight)
	}
}

// TestRecorderWindowLogBound checks the bounded window log drops oldest
// windows and counts them.
func TestRecorderWindowLogBound(t *testing.T) {
	r := NewRecorder(testIndex(), Config{WindowEvents: 1, MaxWindows: 2})
	for i := 0; i < 5; i++ {
		access(r, i%4, int64(i+1))
	}
	g := r.Graph()
	if len(g.WindowLog) != 2 {
		t.Fatalf("window log = %d, want 2", len(g.WindowLog))
	}
	if g.DroppedWindows != 3 {
		t.Fatalf("dropped windows = %d, want 3", g.DroppedWindows)
	}
	if g.Windows != 5 {
		t.Fatalf("windows = %d, want 5", g.Windows)
	}
	// The retained windows are the most recent ones.
	if g.WindowLog[0].Start != 4 || g.WindowLog[1].Start != 5 {
		t.Fatalf("retained windows: %+v", g.WindowLog)
	}
}

// TestRecorderReconcilesWithFile is the end-to-end reconciliation
// contract, mirroring the attribution recorder's test: driving a real
// osim mapping under budget pressure with the recorder attached as all
// three observers, the graph's totals and node sums must equal the
// mapping's and file's own counters exactly.
func TestRecorderReconcilesWithFile(t *testing.T) {
	o := osim.NewOS(osim.SSD())
	o.FaultAround = 1
	o.CacheBudget = 2
	sections := []osim.Section{
		{Name: ".text", Off: 0, Len: 8192},
		{Name: ".svm_heap", Off: 8192, Len: 8192},
	}
	f, err := o.NewFile("bin", 16384, sections)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(testIndex(), Config{WindowEvents: 3})
	m := f.Map()
	m.Observer = r
	m.EvictObserver = r
	m.AccessObserver = r
	for _, p := range []int64{0, 1, 2, 3, 0, 3, 1, 2, 0} {
		m.Touch(p * osim.PageSize)
	}
	o.Reclaim(1)
	m.Touch(0)
	g := r.Graph()

	if g.Faults != m.Faults || g.Major != m.MajorFaults || g.Refaults != m.Refaults {
		t.Fatalf("graph faults=%d/%d/%d, mapping %d/%d/%d",
			g.Faults, g.Major, g.Refaults, m.Faults, m.MajorFaults, m.Refaults)
	}
	if g.Evictions != f.EvictedPages() {
		t.Fatalf("graph evictions %d, file %d", g.Evictions, f.EvictedPages())
	}
	var nf, nmaj, nref, nev, nacc int64
	for _, n := range g.Nodes {
		nf += n.Faults
		nmaj += n.Major
		nref += n.Refaults
		nev += n.Evictions
		nacc += n.Accesses
	}
	if nf != m.Faults || nmaj != m.MajorFaults || nref != m.Refaults {
		t.Fatalf("node sums faults=%d/%d/%d, mapping %d/%d/%d", nf, nmaj, nref, m.Faults, m.MajorFaults, m.Refaults)
	}
	if nev != f.EvictedPages() {
		t.Fatalf("node evictions %d, file %d", nev, f.EvictedPages())
	}
	if nacc != g.AccessEvents {
		t.Fatalf("node accesses %d, total %d", nacc, g.AccessEvents)
	}
	// Per-section totals match osim's own attribution.
	for _, sf := range m.AllSectionFaults() {
		st := g.Section(sf.Section)
		if st.Major != sf.Major || st.Minor != sf.Minor {
			t.Fatalf("section %s: graph %d/%d, mapping %d/%d", sf.Section, st.Major, st.Minor, sf.Major, sf.Minor)
		}
	}
	bySec := f.EvictionsBySection()
	for i, s := range sections {
		if got := g.Section(s.Name).Evicted; got != bySec[i].Pages {
			t.Fatalf("section %s: graph evicted %d, file %d", s.Name, got, bySec[i].Pages)
		}
	}
	// Edge-event totals reconcile exactly (nothing pruned here).
	var co, tr int64
	for _, e := range g.Edges {
		co += e.Co
		tr += e.Trans
	}
	if co+g.PrunedCo != g.Cooccurrences || tr+g.PrunedTrans != g.Transitions {
		t.Fatalf("edge totals co=%d+%d/%d trans=%d+%d/%d",
			co, g.PrunedCo, g.Cooccurrences, tr, g.PrunedTrans, g.Transitions)
	}
}

// TestRecorderDeterministic runs the same event stream twice and expects
// bit-identical graphs (the single-recorder half of the determinism
// contract; the cross-worker half lives in the eval tests).
func TestRecorderDeterministic(t *testing.T) {
	run := func() *Graph {
		o := osim.NewOS(osim.SSD())
		o.FaultAround = 2
		o.CacheBudget = 3
		f, err := o.NewFile("bin", 16384, []osim.Section{
			{Name: ".text", Off: 0, Len: 8192},
			{Name: ".svm_heap", Off: 8192, Len: 8192},
		})
		if err != nil {
			t.Fatal(err)
		}
		r := NewRecorder(testIndex(), Config{WindowEvents: 2, MaxEdges: 2})
		m := f.Map()
		m.Observer = r
		m.EvictObserver = r
		m.AccessObserver = r
		for _, p := range []int64{0, 3, 1, 2, 0, 2, 3, 1, 0, 3} {
			m.Touch(p * osim.PageSize)
		}
		o.ReclaimFraction(50)
		for _, p := range []int64{0, 1, 2, 3} {
			m.Touch(p * osim.PageSize)
		}
		return r.Graph()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("graphs differ across identical runs:\n%+v\n%+v", a, b)
	}
}

// TestMergeReconciles merges two graphs and checks name-keyed addition.
func TestMergeReconciles(t *testing.T) {
	mk := func() *Graph {
		r := NewRecorder(testIndex(), Config{WindowEvents: 2})
		for i, p := range []int{0, 2, 1, 3} {
			access(r, p, int64(i+1))
		}
		return r.Graph()
	}
	a, b := mk(), mk()
	m := Merge(a, b)
	if m.AccessEvents != a.AccessEvents+b.AccessEvents {
		t.Fatalf("merged accesses %d", m.AccessEvents)
	}
	if m.Transitions != a.Transitions+b.Transitions || m.Cooccurrences != a.Cooccurrences+b.Cooccurrences {
		t.Fatalf("merged edge totals: %+v", m)
	}
	var co, tr int64
	for _, e := range m.Edges {
		co += e.Co
		tr += e.Trans
	}
	if co+m.PrunedCo != m.Cooccurrences || tr+m.PrunedTrans != m.Transitions {
		t.Fatal("merged edge sums do not reconcile")
	}
	if len(m.WindowLog) != len(a.WindowLog)+len(b.WindowLog) {
		t.Fatalf("merged window log %d", len(m.WindowLog))
	}
	hdr, ok := m.Node("<header>")
	if !ok || hdr.Accesses != 2 {
		t.Fatalf("merged header node: %+v ok=%v", hdr, ok)
	}
	if Merge(nil, a).AccessEvents != a.AccessEvents {
		t.Fatal("nil graphs must be skipped")
	}
}

// TestCodecRoundTrip writes and re-reads a recorded graph.
func TestCodecRoundTrip(t *testing.T) {
	r := NewRecorder(testIndex(), Config{WindowEvents: 2})
	for i, p := range []int{0, 1, 2, 3, 0, 2} {
		access(r, p, int64(i+1))
	}
	r.OnFault(osim.FaultEvent{Off: 0, Page: 0, Section: 0, Major: true, IONanos: 1000})
	g := r.Graph()
	g.Workload, g.Layout = "w", "identity"
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraph(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, got) {
		t.Fatalf("round trip differs:\n%+v\n%+v", g, got)
	}
}
