package affinity

// JSON codec for affinity graphs. WriteGraph emits the canonical form
// (indented JSON in struct field order); ReadGraph validates schema and
// bounds so hostile or truncated documents fail loudly instead of
// producing a graph whose indices crash the scorers — the contract
// FuzzAffinityCodec exercises: any accepted document round-trips to a
// fixed point, and no input panics the decoder.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Decode-side hard bounds: documents beyond these are rejected rather
// than trusted (the recorder never emits them; a hostile file might).
const (
	maxDecodeNodes      = 1 << 20
	maxDecodeEdges      = 1 << 22
	maxDecodeWindows    = 1 << 20
	maxDecodeWindowSyms = 1 << 16
	maxDecodeSections   = 1 << 12
)

// WriteGraph serializes the graph as indented JSON.
func WriteGraph(w io.Writer, g *Graph) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(g); err != nil {
		return fmt.Errorf("affinity: encoding graph: %w", err)
	}
	return nil
}

// ReadGraph deserializes and validates a graph written by WriteGraph.
func ReadGraph(r io.Reader) (*Graph, error) {
	var g Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("affinity: decoding graph: %w", err)
	}
	if g.Schema != GraphSchema {
		return nil, fmt.Errorf("affinity: unsupported schema %q (want %q)", g.Schema, GraphSchema)
	}
	if err := g.validate(); err != nil {
		return nil, fmt.Errorf("affinity: invalid graph: %w", err)
	}
	return &g, nil
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// validate enforces the structural invariants a decoded graph must hold
// before any consumer walks its indices.
func (g *Graph) validate() error {
	if g.FileSize < 0 || g.Pages < 0 {
		return fmt.Errorf("negative file size or page count")
	}
	if len(g.Nodes) > maxDecodeNodes {
		return fmt.Errorf("%d nodes exceeds bound %d", len(g.Nodes), maxDecodeNodes)
	}
	if len(g.Edges) > maxDecodeEdges {
		return fmt.Errorf("%d edges exceeds bound %d", len(g.Edges), maxDecodeEdges)
	}
	if len(g.WindowLog) > maxDecodeWindows {
		return fmt.Errorf("%d windows exceeds bound %d", len(g.WindowLog), maxDecodeWindows)
	}
	if len(g.Sections) > maxDecodeSections {
		return fmt.Errorf("%d sections exceeds bound %d", len(g.Sections), maxDecodeSections)
	}
	if c := g.Config; c.WindowEvents < 0 || c.MaxEdges < 0 || c.MaxWindows < 0 ||
		c.MaxWindowSymbols < 0 || !finite(c.Decay) || c.Decay < 0 || c.Decay > 1 {
		return fmt.Errorf("config out of bounds: %+v", c)
	}
	for _, v := range []int64{
		g.AccessEvents, g.Faults, g.Major, g.Refaults, g.Evictions, g.Windows,
		g.Transitions, g.Cooccurrences, g.PrunedEdges, g.PrunedCo, g.PrunedTrans,
		g.DroppedWindows, g.OverflowEvents,
	} {
		if v < 0 {
			return fmt.Errorf("negative total counter")
		}
	}
	if !finite(g.PrunedWeight) || g.PrunedWeight < 0 {
		return fmt.Errorf("pruned weight not a finite non-negative number")
	}
	for i, n := range g.Nodes {
		if n.Name == "" {
			return fmt.Errorf("node %d: empty name", i)
		}
		if n.Off < 0 || n.Len < 0 {
			return fmt.Errorf("node %d (%s): negative byte range", i, n.Name)
		}
		if n.Accesses < 0 || n.Faults < 0 || n.Major < 0 || n.Refaults < 0 ||
			n.Evictions < 0 || n.FirstClock < 0 {
			return fmt.Errorf("node %d (%s): negative counter", i, n.Name)
		}
	}
	for i, e := range g.Edges {
		if e.A < 0 || e.B < 0 || int(e.A) >= len(g.Nodes) || int(e.B) >= len(g.Nodes) {
			return fmt.Errorf("edge %d: endpoint out of node range", i)
		}
		if e.A >= e.B {
			return fmt.Errorf("edge %d: endpoints not ordered (a=%d b=%d)", i, e.A, e.B)
		}
		if !finite(e.Weight) || e.Weight < 0 {
			return fmt.Errorf("edge %d: weight not a finite non-negative number", i)
		}
		if e.Co < 0 || e.Trans < 0 {
			return fmt.Errorf("edge %d: negative count", i)
		}
	}
	for i, w := range g.WindowLog {
		if w.Start < 0 || w.Events < 0 {
			return fmt.Errorf("window %d: negative start or event count", i)
		}
		if len(w.Nodes) > maxDecodeWindowSyms {
			return fmt.Errorf("window %d: %d symbols exceeds bound %d", i, len(w.Nodes), maxDecodeWindowSyms)
		}
		for _, id := range w.Nodes {
			if id < 0 || int(id) >= len(g.Nodes) {
				return fmt.Errorf("window %d: node id %d out of range", i, id)
			}
		}
	}
	for i, s := range g.Sections {
		if s.Major < 0 || s.Minor < 0 || s.IONanos < 0 || s.Evicted < 0 || s.Refaults < 0 {
			return fmt.Errorf("section %d (%s): negative counter", i, s.Section)
		}
	}
	return nil
}
