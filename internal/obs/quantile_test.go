package obs

import (
	"math"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 20, 40})
	// 10 observations in (0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	if got := h.Quantile(0.5); got != 10 {
		t.Fatalf("p50 = %v, want 10 (upper edge of first bucket)", got)
	}
	if got := h.Quantile(0.25); got != 5 {
		t.Fatalf("p25 = %v, want 5 (midpoint of first bucket)", got)
	}
	if got := h.Quantile(1); got != 20 {
		t.Fatalf("p100 = %v, want 20", got)
	}
	if got := h.Quantile(0.75); got != 15 {
		t.Fatalf("p75 = %v, want 15", got)
	}
}

func TestHistogramQuantileOverflowClamps(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10})
	h.Observe(1000) // overflow bucket
	if got := h.Quantile(0.99); got != 10 {
		t.Fatalf("overflow quantile = %v, want clamp to 10", got)
	}
}

func TestHistogramQuantileEmptyAndNil(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10})
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty quantile = %v, want NaN", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("nil quantile = %v, want NaN", got)
	}
}

func TestHistogramPointQuantile(t *testing.T) {
	p := HistogramPoint{
		Bounds: []float64{100, 200},
		Counts: []int64{4, 4, 0},
		Count:  8,
	}
	if got := p.Quantile(0.5); got != 100 {
		t.Fatalf("point p50 = %v, want 100", got)
	}
	if got := p.Quantile(0.75); got != 150 {
		t.Fatalf("point p75 = %v, want 150", got)
	}
	empty := HistogramPoint{Bounds: []float64{1}, Counts: []int64{0, 0}}
	if got := empty.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty point quantile = %v, want NaN", got)
	}
}

func TestHistogramQuantileClampsQ(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10})
	h.Observe(5)
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Fatalf("q<0 not clamped: %v", got)
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Fatalf("q>1 not clamped: %v", got)
	}
}

func TestQuantileExact(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		q, want float64
	}{
		{0.5, 5}, {0.99, 10}, {0.1, 1}, {0.9, 9},
		// Boundary quantiles: q=0 is the minimum, q=1 the maximum.
		{0, 1}, {1, 10},
	} {
		if got := QuantileExact(s, tc.q); got != tc.want {
			t.Errorf("q=%v = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestQuantileExactEmpty(t *testing.T) {
	if got := QuantileExact(nil, 0.5); got != 0 {
		t.Errorf("nil sample = %v, want 0", got)
	}
	if got := QuantileExact([]float64{}, 0.99); got != 0 {
		t.Errorf("empty sample = %v, want 0", got)
	}
}

func TestQuantileExactSingleton(t *testing.T) {
	// A single sample answers every quantile with itself.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := QuantileExact([]float64{7}, q); got != 7 {
			t.Errorf("singleton q=%v = %v", q, got)
		}
	}
}

func TestQuantileExactRejectsUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("QuantileExact accepted an unsorted sample")
		}
	}()
	QuantileExact([]float64{3, 1, 2}, 0.5)
}
