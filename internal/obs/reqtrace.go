package obs

// Per-request serve telemetry: a bounded streaming recorder for the
// request traces of the serve-mode harness. Each record carries the
// request's stream, burst and route, its queue-wait vs service split on
// the simulated server clock, and the fault traffic it incurred — the
// raw material of the SLO scorecards (slo.go) and of the per-stream
// Chrome trace export. The recorder is bounded: past the limit it
// counts drops instead of growing, so an unexpectedly long run degrades
// to summary statistics rather than unbounded memory.

import (
	"encoding/json"
	"fmt"
	"io"
)

// RequestTraceSchema versions the serialized request-trace document.
const RequestTraceSchema = "nimage.reqtrace/v1"

// DefaultTraceLimit bounds a recorder whose creator did not choose a
// capacity.
const DefaultTraceLimit = 8192

// Decode-side hard bounds: documents beyond these are rejected rather
// than trusted (the recorder never emits them; a hostile file might).
const (
	maxDecodeRecords = 1 << 22
	maxDecodeMarks   = 1 << 20
	maxDecodeStreams = 1 << 16
)

// RequestRecord is the telemetry of one served request.
type RequestRecord struct {
	// ID is the request's global arrival ordinal; Stream the closed-loop
	// client stream that issued it; Burst the burst it belongs to; Route
	// the dispatch route it hit.
	ID     int `json:"id"`
	Stream int `json:"stream"`
	Burst  int `json:"burst"`
	Route  int `json:"route"`
	// StartNanos is the request's arrival on the simulated server clock
	// (CPU nanos + accumulated fault I/O). QueueNanos is the wait until
	// service began (0 for a single stream), ServiceNanos the service
	// time (CPU delta plus fault I/O delta), and LatencyNanos their sum —
	// what the client observes.
	StartNanos   float64 `json:"start_nanos"`
	QueueNanos   float64 `json:"queue_nanos"`
	ServiceNanos float64 `json:"service_nanos"`
	LatencyNanos float64 `json:"latency_nanos"`
	// Steps counts the vm instructions the request executed; the fault
	// counters are the mapping deltas the request incurred.
	Steps       int64 `json:"steps"`
	Faults      int64 `json:"faults"`
	MajorFaults int64 `json:"major_faults"`
	Refaults    int64 `json:"refaults"`
	IONanos     int64 `json:"io_nanos"`
}

// TraceMark is an instant on the server clock: a burst boundary or an
// inter-burst pressure reclaim.
type TraceMark struct {
	// Kind is "burst" (a burst begins) or "reclaim" (pressure reclaim).
	Kind    string  `json:"kind"`
	Burst   int     `json:"burst"`
	AtNanos float64 `json:"at_nanos"`
}

// Mark kinds.
const (
	MarkBurst   = "burst"
	MarkReclaim = "reclaim"
)

// RequestTrace is the bounded per-request recording of one serve run.
// A nil *RequestTrace is valid and records nothing at zero cost, like a
// nil Registry.
type RequestTrace struct {
	Schema   string `json:"schema"`
	Workload string `json:"workload,omitempty"`
	Layout   string `json:"layout,omitempty"`
	// Streams is the number of concurrent request streams of the run.
	Streams int `json:"streams"`
	// Limit is the record capacity; Dropped counts the records beyond it.
	Limit   int             `json:"limit"`
	Records []RequestRecord `json:"records"`
	Dropped int64           `json:"dropped"`
	Marks   []TraceMark     `json:"marks,omitempty"`
}

// NewRequestTrace creates a recorder for the given stream count, bounded
// to limit records (limit <= 0 uses DefaultTraceLimit).
func NewRequestTrace(streams, limit int) *RequestTrace {
	if limit <= 0 {
		limit = DefaultTraceLimit
	}
	if streams < 1 {
		streams = 1
	}
	return &RequestTrace{Schema: RequestTraceSchema, Streams: streams, Limit: limit}
}

// Record appends one request record, counting a drop once the recorder
// is full. Nil-safe.
func (t *RequestTrace) Record(r RequestRecord) {
	if t == nil {
		return
	}
	if len(t.Records) >= t.Limit {
		t.Dropped++
		return
	}
	t.Records = append(t.Records, r)
}

// Mark appends one instant mark. Marks are not bounded by Limit: there
// are two per burst at most, set by the harness, not by traffic.
func (t *RequestTrace) Mark(kind string, burst int, atNanos float64) {
	if t == nil {
		return
	}
	t.Marks = append(t.Marks, TraceMark{Kind: kind, Burst: burst, AtNanos: atNanos})
}

// WriteRequestTrace serializes the trace as indented JSON.
func WriteRequestTrace(w io.Writer, t *RequestTrace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("obs: encoding request trace: %w", err)
	}
	return nil
}

// ReadRequestTrace deserializes and validates a trace written by
// WriteRequestTrace: hostile or truncated documents fail loudly instead
// of producing records whose indices crash the exporters — the contract
// FuzzSLOCodec exercises.
func ReadRequestTrace(r io.Reader) (*RequestTrace, error) {
	var t RequestTrace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("obs: decoding request trace: %w", err)
	}
	if t.Schema != RequestTraceSchema {
		return nil, fmt.Errorf("obs: unsupported request-trace schema %q (want %q)", t.Schema, RequestTraceSchema)
	}
	if err := t.validate(); err != nil {
		return nil, fmt.Errorf("obs: invalid request trace: %w", err)
	}
	return &t, nil
}

// validate enforces the structural invariants a decoded trace must hold
// before any consumer walks it.
func (t *RequestTrace) validate() error {
	if t.Streams < 1 || t.Streams > maxDecodeStreams {
		return fmt.Errorf("stream count %d outside [1, %d]", t.Streams, maxDecodeStreams)
	}
	if t.Limit < 0 || t.Dropped < 0 {
		return fmt.Errorf("negative limit or drop count")
	}
	if len(t.Records) > maxDecodeRecords {
		return fmt.Errorf("%d records exceeds bound %d", len(t.Records), maxDecodeRecords)
	}
	if len(t.Marks) > maxDecodeMarks {
		return fmt.Errorf("%d marks exceeds bound %d", len(t.Marks), maxDecodeMarks)
	}
	for i, r := range t.Records {
		if r.ID < 0 || r.Burst < 0 || r.Route < 0 {
			return fmt.Errorf("record %d: negative id, burst or route", i)
		}
		if r.Stream < 0 || r.Stream >= t.Streams {
			return fmt.Errorf("record %d: stream %d outside [0, %d)", i, r.Stream, t.Streams)
		}
		for _, v := range []float64{r.StartNanos, r.QueueNanos, r.ServiceNanos, r.LatencyNanos} {
			if !finiteNonNeg(v) {
				return fmt.Errorf("record %d: time not a finite non-negative number", i)
			}
		}
		if r.Steps < 0 || r.Faults < 0 || r.MajorFaults < 0 || r.Refaults < 0 || r.IONanos < 0 {
			return fmt.Errorf("record %d: negative counter", i)
		}
	}
	for i, m := range t.Marks {
		if m.Kind != MarkBurst && m.Kind != MarkReclaim {
			return fmt.Errorf("mark %d: unknown kind %q", i, m.Kind)
		}
		if m.Burst < 0 || !finiteNonNeg(m.AtNanos) {
			return fmt.Errorf("mark %d: negative burst or bad instant", i)
		}
	}
	return nil
}

// Chrome trace-event export: one track per stream, each request a
// duration event covering its service time (queue wait in the args),
// plus an instants track for burst boundaries and pressure reclaims.
// The time axis is the simulated server clock rendered as microseconds.

const (
	reqTracePid   = 1
	reqMarkTid    = 1
	reqStreamTid0 = 2
)

// WriteRequestChromeTrace writes the trace as Chrome trace-event JSON
// loadable by chrome://tracing and Perfetto.
func WriteRequestChromeTrace(w io.Writer, t *RequestTrace) error {
	type traceEvent struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Cat  string         `json:"cat,omitempty"`
		S    string         `json:"s,omitempty"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur,omitempty"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args,omitempty"`
	}
	type traceFile struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	proc := "nimage serve"
	if t.Workload != "" {
		proc = fmt.Sprintf("nimage serve %s (%s)", t.Workload, t.Layout)
	}
	tf := traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{
		{Name: "process_name", Ph: "M", Pid: reqTracePid, Tid: reqMarkTid,
			Args: map[string]any{"name": proc}},
		{Name: "thread_name", Ph: "M", Pid: reqTracePid, Tid: reqMarkTid,
			Args: map[string]any{"name": "bursts + reclaims"}},
	}}
	for s := 0; s < t.Streams; s++ {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: reqTracePid, Tid: reqStreamTid0 + s,
			Args: map[string]any{"name": fmt.Sprintf("stream %02d", s)},
		})
	}
	const toMicros = 1e-3 // trace Ts/Dur are microseconds; records are nanos
	for _, m := range t.Marks {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: fmt.Sprintf("%s %d", m.Kind, m.Burst), Ph: "i", Cat: "serve", S: "g",
			Ts: m.AtNanos * toMicros, Pid: reqTracePid, Tid: reqMarkTid,
		})
	}
	for _, r := range t.Records {
		if r.Stream < 0 || r.Stream >= t.Streams {
			continue
		}
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: fmt.Sprintf("route %d", r.Route), Ph: "X", Cat: "serve",
			Ts:  (r.StartNanos + r.QueueNanos) * toMicros,
			Dur: r.ServiceNanos * toMicros,
			Pid: reqTracePid, Tid: reqStreamTid0 + r.Stream,
			Args: map[string]any{
				"id": r.ID, "burst": r.Burst,
				"queue_nanos":  r.QueueNanos,
				"major_faults": r.MajorFaults, "refaults": r.Refaults,
				"io_nanos": r.IONanos, "steps": r.Steps,
			},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(&tf); err != nil {
		return fmt.Errorf("obs: writing request chrome trace: %w", err)
	}
	return nil
}
