package obs

// Fleet observatory document: the serialized scorecard of one multi-
// tenant serve run — N tenants (workload × strategy pairs) served from
// one simulated OS under a shared page-cache budget. Each tenant carries
// its latency/fault/residency telemetry, per-burst timeline, SLO
// attainment and isolation factors (in-fleet vs solo), and the report
// carries the eviction interference matrix: entry [i][j] counts pages
// owned by tenant j-1 that tenant i-1's faults evicted (row 0: external
// pressure; column 0: untenanted files). The matrix partitions the total
// evictions exactly — the validator rejects documents whose cells do not
// sum to the totals, so every consumer can trust the partition.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// FleetSchema versions the serialized fleet report document.
const FleetSchema = "nimage.fleet/v1"

// Decode-side hard bounds for fleet report documents.
const (
	maxDecodeFleetTenants = 1 << 10
	maxDecodeFleetBursts  = 1 << 16
)

// FleetBurst is one burst of one tenant's timeline: latency quantiles
// plus the fault, eviction and residency telemetry of that burst.
type FleetBurst struct {
	Burst         int     `json:"burst"`
	Requests      int     `json:"requests"`
	MeanNanos     float64 `json:"mean_nanos"`
	P99Nanos      float64 `json:"p99_nanos"`
	MajorFaults   int64   `json:"major_faults"`
	Refaults      int64   `json:"refaults"`
	EvictedPages  int64   `json:"evicted_pages"`
	ResidentPages int64   `json:"resident_pages"`
}

// FleetTenant is one tenant's scorecard: identity (workload × strategy),
// run aggregates, the per-burst timeline, SLO attainment over the warm
// requests, and the isolation factors against the tenant's solo run
// under the same budget (>1: the fleet made it worse).
type FleetTenant struct {
	Tenant     int    `json:"tenant"`
	Workload   string `json:"workload"`
	Strategy   string `json:"strategy"`
	QuotaPages int    `json:"quota_pages,omitempty"`
	// Startup and warm-burst latency aggregates (simulated nanoseconds).
	StartupNanos  float64 `json:"startup_nanos"`
	WarmMeanNanos float64 `json:"warm_mean_nanos"`
	WarmP99Nanos  float64 `json:"warm_p99_nanos"`
	// Fault traffic charged to the tenant (partition of the OS totals).
	Faults      int64 `json:"faults"`
	MajorFaults int64 `json:"major_faults"`
	Refaults    int64 `json:"refaults"`
	IONanos     int64 `json:"io_nanos"`
	// Owner-side page-cache churn: pages of this tenant's file evicted
	// (the interference matrix's column sum) and resident at run end.
	EvictedPages  int64 `json:"evicted_pages"`
	ResidentPages int64 `json:"resident_pages"`
	// Timeline is the per-burst fault/refault/residency record.
	Timeline []FleetBurst `json:"timeline,omitempty"`
	// Attainment scores the tenant's warm latencies against the SLO
	// targets of the run.
	Attainment []SLOAttainment `json:"attainment,omitempty"`
	// Solo-run comparison: the same workload × strategy measured alone
	// under the same budget and pressure. IsolationLatency is the
	// in-fleet / solo warm-mean ratio; IsolationRefault the (1+fleet) /
	// (1+solo) re-fault ratio (add-one smoothed, so re-fault-free runs
	// stay finite).
	SoloWarmMeanNanos float64 `json:"solo_warm_mean_nanos,omitempty"`
	SoloRefaults      int64   `json:"solo_refaults,omitempty"`
	IsolationLatency  float64 `json:"isolation_latency,omitempty"`
	IsolationRefault  float64 `json:"isolation_refault,omitempty"`
}

// FleetReport is the fleet observatory document (`nimage fleet -o`,
// `output/BENCH_fleet.json` entries).
type FleetReport struct {
	Schema string `json:"schema"`
	// Scenario knobs shared by every tenant.
	Bursts      int    `json:"bursts"`
	BurstSize   int    `json:"burst_size"`
	CacheBudget int    `json:"cache_budget"`
	PressurePct int    `json:"pressure_pct"`
	Policy      string `json:"policy"`
	// Targets are the SLO objectives the attainments were scored against.
	Targets []SLOTarget   `json:"targets,omitempty"`
	Tenants []FleetTenant `json:"tenants"`
	// EvictedBy is the interference matrix: [i][j] counts pages owned by
	// tenant j-1 evicted by tenant i-1's faults (row 0 external pressure,
	// column 0 untenanted files). It is (len(Tenants)+1)² and partitions
	// TotalEvictions exactly (enforced by the validator).
	EvictedBy      [][]int64 `json:"evicted_by"`
	TotalEvictions int64     `json:"total_evictions"`
}

// WriteFleetReport serializes the report as indented JSON.
func WriteFleetReport(w io.Writer, r *FleetReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("obs: encoding fleet report: %w", err)
	}
	return nil
}

// ReadFleetReport deserializes and validates a report written by
// WriteFleetReport: hostile or truncated documents fail loudly instead
// of producing matrices whose indices crash the renderers — the contract
// FuzzFleetCodec exercises.
func ReadFleetReport(r io.Reader) (*FleetReport, error) {
	var rep FleetReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("obs: decoding fleet report: %w", err)
	}
	if rep.Schema != FleetSchema {
		return nil, fmt.Errorf("obs: unsupported fleet schema %q (want %q)", rep.Schema, FleetSchema)
	}
	if err := rep.validate(); err != nil {
		return nil, fmt.Errorf("obs: invalid fleet report: %w", err)
	}
	return &rep, nil
}

// validAttainments shares the attainment invariants between the SLO and
// fleet validators.
func validAttainments(as []SLOAttainment) error {
	if len(as) > maxDecodeTargets {
		return fmt.Errorf("%d attainments exceeds bound %d", len(as), maxDecodeTargets)
	}
	for j, a := range as {
		if math.IsNaN(a.Quantile) || a.Quantile <= 0 || a.Quantile >= 1 {
			return fmt.Errorf("attainment %d: quantile outside (0, 1)", j)
		}
		if !finiteNonNeg(a.BudgetNanos) || !finiteNonNeg(a.MeasuredNanos) {
			return fmt.Errorf("attainment %d: budget or measurement not finite non-negative", j)
		}
		if a.Violations < 0 || a.Requests < 0 || a.Violations > a.Requests {
			return fmt.Errorf("attainment %d: violation count out of range", j)
		}
		if math.IsNaN(a.ViolationFrac) || a.ViolationFrac < 0 || a.ViolationFrac > 1 {
			return fmt.Errorf("attainment %d: violation fraction outside [0, 1]", j)
		}
		if math.IsNaN(a.BudgetBurn) || a.BudgetBurn < 0 {
			return fmt.Errorf("attainment %d: negative or NaN budget burn", j)
		}
	}
	return nil
}

// validate enforces the structural invariants a decoded fleet report must
// hold before any consumer renders it — including the partition contract
// of the interference matrix.
func (r *FleetReport) validate() error {
	if r.Bursts < 0 || r.BurstSize < 0 || r.CacheBudget < 0 {
		return fmt.Errorf("negative bursts, burst size or budget")
	}
	if r.PressurePct < 0 || r.PressurePct > maxDecodePressurePct {
		return fmt.Errorf("pressure %d%% outside [0, %d]", r.PressurePct, maxDecodePressurePct)
	}
	if err := validTargets(r.Targets); err != nil {
		return err
	}
	if len(r.Tenants) > maxDecodeFleetTenants {
		return fmt.Errorf("%d tenants exceeds bound %d", len(r.Tenants), maxDecodeFleetTenants)
	}
	for i, tn := range r.Tenants {
		if tn.Tenant != i {
			return fmt.Errorf("tenant %d carries id %d (must be its index)", i, tn.Tenant)
		}
		if tn.Workload == "" || tn.Strategy == "" {
			return fmt.Errorf("tenant %d: empty workload or strategy", i)
		}
		if tn.QuotaPages < 0 {
			return fmt.Errorf("tenant %d: negative quota", i)
		}
		for _, v := range []float64{tn.StartupNanos, tn.WarmMeanNanos, tn.WarmP99Nanos,
			tn.SoloWarmMeanNanos, tn.IsolationLatency, tn.IsolationRefault} {
			if !finiteNonNeg(v) {
				return fmt.Errorf("tenant %d: latency or isolation factor not finite non-negative", i)
			}
		}
		if tn.Faults < 0 || tn.MajorFaults < 0 || tn.Refaults < 0 || tn.IONanos < 0 ||
			tn.EvictedPages < 0 || tn.ResidentPages < 0 || tn.SoloRefaults < 0 {
			return fmt.Errorf("tenant %d: negative counter", i)
		}
		if len(tn.Timeline) > maxDecodeFleetBursts {
			return fmt.Errorf("tenant %d: %d timeline bursts exceeds bound %d", i, len(tn.Timeline), maxDecodeFleetBursts)
		}
		for k, b := range tn.Timeline {
			if b.Burst != k {
				return fmt.Errorf("tenant %d burst %d carries index %d (must be its position)", i, k, b.Burst)
			}
			if b.Requests < 0 || !finiteNonNeg(b.MeanNanos) || !finiteNonNeg(b.P99Nanos) {
				return fmt.Errorf("tenant %d burst %d: bad request count or latency", i, k)
			}
			if b.MajorFaults < 0 || b.Refaults < 0 || b.EvictedPages < 0 || b.ResidentPages < 0 {
				return fmt.Errorf("tenant %d burst %d: negative counter", i, k)
			}
		}
		if err := validAttainments(tn.Attainment); err != nil {
			return fmt.Errorf("tenant %d: %w", i, err)
		}
	}
	// Interference matrix: exactly (tenants+1)² and an exact partition of
	// the eviction totals.
	n := len(r.Tenants) + 1
	if len(r.EvictedBy) != n {
		return fmt.Errorf("interference matrix has %d rows, want %d", len(r.EvictedBy), n)
	}
	if r.TotalEvictions < 0 {
		return fmt.Errorf("negative total evictions")
	}
	var total int64
	colSums := make([]int64, n)
	for i, row := range r.EvictedBy {
		if len(row) != n {
			return fmt.Errorf("interference matrix row %d has %d columns, want %d", i, len(row), n)
		}
		for j, v := range row {
			if v < 0 {
				return fmt.Errorf("interference matrix cell [%d][%d] negative", i, j)
			}
			total += v
			colSums[j] += v
		}
	}
	if total != r.TotalEvictions {
		return fmt.Errorf("interference matrix sums to %d evictions, report claims %d", total, r.TotalEvictions)
	}
	for j, tn := range r.Tenants {
		if colSums[j+1] != tn.EvictedPages {
			return fmt.Errorf("tenant %d column sums to %d evictions, tenant reports %d", j, colSums[j+1], tn.EvictedPages)
		}
	}
	return nil
}

// Chrome trace export: one track per tenant (each request a duration
// event over its service time), the burst/reclaim instants track, and an
// eviction-pressure counter track sampling each tenant's per-burst
// evictions — the contention picture at a glance.

// WriteFleetChromeTrace writes the fleet run as Chrome trace-event JSON
// loadable by chrome://tracing and Perfetto. t carries the per-request
// records (streams are tenant ids); a nil trace still renders the
// eviction-pressure track on a synthetic per-burst time axis.
func WriteFleetChromeTrace(w io.Writer, rep *FleetReport, t *RequestTrace) error {
	type traceEvent struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Cat  string         `json:"cat,omitempty"`
		S    string         `json:"s,omitempty"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur,omitempty"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args,omitempty"`
	}
	type traceFile struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	const (
		pid        = 1
		markTid    = 1
		tenantTid0 = 2
	)
	evictTid := tenantTid0 + len(rep.Tenants)
	tf := traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{
		{Name: "process_name", Ph: "M", Pid: pid, Tid: markTid,
			Args: map[string]any{"name": fmt.Sprintf("nimage fleet (%d tenants)", len(rep.Tenants))}},
		{Name: "thread_name", Ph: "M", Pid: pid, Tid: markTid,
			Args: map[string]any{"name": "bursts + reclaims"}},
		{Name: "thread_name", Ph: "M", Pid: pid, Tid: evictTid,
			Args: map[string]any{"name": "eviction pressure"}},
	}}
	for i, tn := range rep.Tenants {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tenantTid0 + i,
			Args: map[string]any{"name": fmt.Sprintf("tenant %02d %s/%s", i, tn.Workload, tn.Strategy)},
		})
	}
	const toMicros = 1e-3 // trace Ts/Dur are microseconds; records are nanos
	// Burst start instants on the server clock, for the eviction counter
	// track. Without a request trace, fall back to the burst index (one
	// tick per burst).
	burstTs := make(map[int]float64)
	if t != nil {
		for _, m := range t.Marks {
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: fmt.Sprintf("%s %d", m.Kind, m.Burst), Ph: "i", Cat: "fleet", S: "g",
				Ts: m.AtNanos * toMicros, Pid: pid, Tid: markTid,
			})
			if m.Kind == MarkBurst {
				burstTs[m.Burst] = m.AtNanos * toMicros
			}
		}
		for _, r := range t.Records {
			if r.Stream < 0 || r.Stream >= len(rep.Tenants) {
				continue
			}
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: fmt.Sprintf("route %d", r.Route), Ph: "X", Cat: "fleet",
				Ts:  (r.StartNanos + r.QueueNanos) * toMicros,
				Dur: r.ServiceNanos * toMicros,
				Pid: pid, Tid: tenantTid0 + r.Stream,
				Args: map[string]any{
					"id": r.ID, "burst": r.Burst,
					"queue_nanos":  r.QueueNanos,
					"major_faults": r.MajorFaults, "refaults": r.Refaults,
					"io_nanos": r.IONanos, "steps": r.Steps,
				},
			})
		}
	}
	for b := 0; b < rep.Bursts; b++ {
		args := map[string]any{}
		for i, tn := range rep.Tenants {
			if b < len(tn.Timeline) {
				args[fmt.Sprintf("tenant %02d", i)] = tn.Timeline[b].EvictedPages
			}
		}
		if len(args) == 0 {
			continue
		}
		ts, ok := burstTs[b]
		if !ok {
			ts = float64(b)
		}
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "evicted_pages", Ph: "C", Cat: "fleet",
			Ts: ts, Pid: pid, Tid: evictTid, Args: args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(&tf); err != nil {
		return fmt.Errorf("obs: writing fleet chrome trace: %w", err)
	}
	return nil
}
