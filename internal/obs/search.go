package obs

// Layout-search journals: the serialized record of one SLO-driven layout
// search (`nimage tune`, `nimage-eval -figure search`). Every iteration
// logs every generated candidate — its generation op, static prediction,
// whether it was promoted to full serve measurement, the measured
// scorecard, and the accept/reject reason — so a search trajectory can
// be replayed and audited offline. Like every document the toolchain
// ships, the decode side is bounded and validated before any consumer
// renders it, and hardened by FuzzSearchCodec.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// SearchSchema versions the serialized layout-search journal.
const SearchSchema = "nimage.search/v1"

// Decode-side hard bounds for search journals.
const (
	maxDecodeSearchIters      = 1 << 12
	maxDecodeSearchCandidates = 1 << 16
	maxDecodeSearchSymbols    = 1 << 24
)

// SearchCandidateRecord journals one generated candidate ordering: its
// static prediction always, its measured scorecard only when it was
// promoted past the prediction gate.
type SearchCandidateRecord struct {
	// ID names the candidate (e.g. "c3/limit=8192", "perturb/i1/k3/move");
	// Op is its generation family; OrderDigest the position-sensitive hash
	// of its ordering, hex-rendered.
	ID          string `json:"id"`
	Op          string `json:"op"`
	OrderDigest string `json:"order_digest"`
	// PredictedRefaults and PredictedLocality are the static affinity
	// replay's scores (the promotion ranking).
	PredictedRefaults int64   `json:"predicted_refaults"`
	PredictedLocality float64 `json:"predicted_locality"`
	// Promoted marks candidates that graduated to full serve measurement;
	// the measured fields below are zero for the rest.
	Promoted bool `json:"promoted"`
	// Attained counts attained (pressure, target) cells out of Targets;
	// BudgetBurn is the summed budget burn and RefaultGeomean the
	// refault-factor geomean across the swept pressures.
	Attained       int     `json:"attained,omitempty"`
	Targets        int     `json:"targets,omitempty"`
	BudgetBurn     float64 `json:"budget_burn,omitempty"`
	RefaultGeomean float64 `json:"refault_geomean,omitempty"`
	// Accepted marks the candidate that replaced the incumbent; Reason
	// explains the verdict either way ("strictly improves scorecard",
	// "not promoted", "no strict improvement", ...).
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason"`
}

// SearchIteration is one round of the search loop.
type SearchIteration struct {
	Iter int `json:"iter"`
	// Incumbent is the candidate ID holding the best measured scorecard
	// entering this iteration.
	Incumbent  string                  `json:"incumbent"`
	Candidates []SearchCandidateRecord `json:"candidates"`
}

// SearchFinal is the search's verdict: the winning candidate and its
// measured scorecard.
type SearchFinal struct {
	Candidate      string  `json:"candidate"`
	Symbols        int     `json:"symbols"`
	OrderDigest    string  `json:"order_digest"`
	Attained       int     `json:"attained"`
	Targets        int     `json:"targets"`
	BudgetBurn     float64 `json:"budget_burn"`
	RefaultGeomean float64 `json:"refault_geomean"`
}

// SearchReport is the layout-search journal document
// (`output/search-<workload>.json`).
type SearchReport struct {
	Schema   string `json:"schema"`
	Workload string `json:"workload"`
	Strategy string `json:"strategy"`
	// Seed drives the perturbation draws; BudgetIters and TopK are the
	// loop's budget; Pressures and Targets its objective.
	Seed        uint64            `json:"seed"`
	BudgetIters int               `json:"budget_iters"`
	TopK        int               `json:"top_k"`
	Pressures   []int             `json:"pressures"`
	Targets     []SLOTarget       `json:"targets"`
	Iterations  []SearchIteration `json:"iterations"`
	Final       SearchFinal       `json:"final"`
}

// WriteSearchReport serializes the journal as indented JSON.
func WriteSearchReport(w io.Writer, r *SearchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("obs: encoding search report: %w", err)
	}
	return nil
}

// ReadSearchReport deserializes and validates a journal written by
// WriteSearchReport.
func ReadSearchReport(r io.Reader) (*SearchReport, error) {
	var rep SearchReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("obs: decoding search report: %w", err)
	}
	if rep.Schema != SearchSchema {
		return nil, fmt.Errorf("obs: unsupported search schema %q (want %q)", rep.Schema, SearchSchema)
	}
	if err := rep.validate(); err != nil {
		return nil, fmt.Errorf("obs: invalid search report: %w", err)
	}
	return &rep, nil
}

// validDigest accepts the hex rendering OrderDigest emits: 1-16 lowercase
// hex digits.
func validDigest(s string) bool {
	if len(s) == 0 || len(s) > 16 {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func validMeasuredScore(attained, targets int, burn, geo float64) error {
	if targets < 0 || targets > maxDecodeTargets*(maxDecodePressurePct+1) {
		return fmt.Errorf("target cell count %d out of range", targets)
	}
	if attained < 0 || attained > targets {
		return fmt.Errorf("attained count %d outside [0, %d]", attained, targets)
	}
	if math.IsNaN(burn) || burn < 0 {
		return fmt.Errorf("negative or NaN budget burn")
	}
	if !finiteNonNeg(geo) {
		return fmt.Errorf("refault geomean not finite non-negative")
	}
	return nil
}

// validate enforces the structural invariants a decoded journal must
// hold before any consumer renders it.
func (r *SearchReport) validate() error {
	if r.Workload == "" || r.Strategy == "" {
		return fmt.Errorf("empty workload or strategy")
	}
	if r.BudgetIters < 0 || r.BudgetIters > maxDecodeSearchIters {
		return fmt.Errorf("budget %d outside [0, %d]", r.BudgetIters, maxDecodeSearchIters)
	}
	if r.TopK < 0 || r.TopK > maxDecodeSearchCandidates {
		return fmt.Errorf("top-k %d outside [0, %d]", r.TopK, maxDecodeSearchCandidates)
	}
	if len(r.Pressures) == 0 || len(r.Pressures) > maxDecodePressurePct+1 {
		return fmt.Errorf("pressure count %d outside [1, %d]", len(r.Pressures), maxDecodePressurePct+1)
	}
	for _, p := range r.Pressures {
		if p < 0 || p > maxDecodePressurePct {
			return fmt.Errorf("pressure %d%% outside [0, %d]", p, maxDecodePressurePct)
		}
	}
	if err := validTargets(r.Targets); err != nil {
		return err
	}
	if len(r.Targets) == 0 {
		return fmt.Errorf("no slo targets")
	}
	if len(r.Iterations) > maxDecodeSearchIters {
		return fmt.Errorf("%d iterations exceeds bound %d", len(r.Iterations), maxDecodeSearchIters)
	}
	for i, it := range r.Iterations {
		if it.Iter < 0 || it.Iter > maxDecodeSearchIters {
			return fmt.Errorf("iteration %d: index out of range", i)
		}
		if it.Incumbent == "" {
			return fmt.Errorf("iteration %d: empty incumbent", i)
		}
		if len(it.Candidates) > maxDecodeSearchCandidates {
			return fmt.Errorf("iteration %d: %d candidates exceeds bound %d", i, len(it.Candidates), maxDecodeSearchCandidates)
		}
		for j, c := range it.Candidates {
			if c.ID == "" || c.Op == "" {
				return fmt.Errorf("iteration %d candidate %d: empty id or op", i, j)
			}
			if !validDigest(c.OrderDigest) {
				return fmt.Errorf("iteration %d candidate %d: malformed order digest", i, j)
			}
			if c.PredictedRefaults < 0 {
				return fmt.Errorf("iteration %d candidate %d: negative predicted refaults", i, j)
			}
			if !finiteNonNeg(c.PredictedLocality) {
				return fmt.Errorf("iteration %d candidate %d: predicted locality not finite non-negative", i, j)
			}
			if c.Accepted && !c.Promoted {
				return fmt.Errorf("iteration %d candidate %d: accepted without promotion", i, j)
			}
			if c.Reason == "" {
				return fmt.Errorf("iteration %d candidate %d: empty reason", i, j)
			}
			if err := validMeasuredScore(c.Attained, c.Targets, c.BudgetBurn, c.RefaultGeomean); err != nil {
				return fmt.Errorf("iteration %d candidate %d: %v", i, j, err)
			}
		}
	}
	f := r.Final
	if f.Candidate == "" {
		return fmt.Errorf("final: empty candidate")
	}
	if f.Symbols < 0 || f.Symbols > maxDecodeSearchSymbols {
		return fmt.Errorf("final: symbol count %d out of range", f.Symbols)
	}
	if !validDigest(f.OrderDigest) {
		return fmt.Errorf("final: malformed order digest")
	}
	if err := validMeasuredScore(f.Attained, f.Targets, f.BudgetBurn, f.RefaultGeomean); err != nil {
		return fmt.Errorf("final: %v", err)
	}
	return nil
}
