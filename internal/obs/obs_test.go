package obs

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrency hammers one registry from many goroutines the way
// the toolchain does: parallel build-time class initialization incrementing
// shared counters, and the multi-threaded scheduler recording timeline
// events, gauges, spans, and histogram observations concurrently.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("clinit.runs")
			h := r.Histogram("sched.quantum", DurationBuckets())
			tl := r.Timeline("faults", "offset", "major")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				r.Counter("clinit.runs").Add(1) // racing re-registration
				r.Gauge("sched.threads").Set(float64(w))
				h.Observe(float64(i))
				tl.Record("sec", int64(i), int64(w))
				s := r.StartSpan("stage")
				s.End()
			}
		}(w)
	}
	wg.Wait()

	snap := r.Snapshot()
	if got := snap.Counter("clinit.runs"); got != 2*workers*perWorker {
		t.Errorf("counter = %d, want %d", got, 2*workers*perWorker)
	}
	tl := snap.Timeline("faults")
	if tl == nil || len(tl.Events) != workers*perWorker {
		t.Fatalf("timeline events = %v, want %d", tl, workers*perWorker)
	}
	for i := 1; i < len(tl.Events); i++ {
		if tl.Events[i].Seq <= tl.Events[i-1].Seq {
			t.Fatalf("timeline not in sequence order at %d: %d then %d", i, tl.Events[i-1].Seq, tl.Events[i].Seq)
		}
	}
	if len(snap.Spans) != workers*perWorker {
		t.Errorf("spans = %d, want %d", len(snap.Spans), workers*perWorker)
	}
	var histCount int64
	for _, h := range snap.Histograms {
		histCount += h.Count
	}
	if histCount != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", histCount, workers*perWorker)
	}
}

// TestHistogramBucketEdges pins the v <= bound bucket semantics at the
// edges of a fixed layout.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{10, 100})
	for _, v := range []float64{-5, 0, 10} { // all <= 10
		h.Observe(v)
	}
	for _, v := range []float64{10.5, 100} { // (10, 100]
		h.Observe(v)
	}
	h.Observe(100.0001) // overflow
	h.Observe(1e12)     // overflow

	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(snap.Histograms))
	}
	hp := snap.Histograms[0]
	want := []int64{3, 2, 2}
	if !reflect.DeepEqual(hp.Counts, want) {
		t.Errorf("bucket counts = %v, want %v", hp.Counts, want)
	}
	if hp.Count != 7 {
		t.Errorf("count = %d, want 7", hp.Count)
	}
	wantSum := -5 + 0 + 10 + 10.5 + 100 + 100.0001 + 1e12
	if hp.Sum != wantSum {
		t.Errorf("sum = %v, want %v", hp.Sum, wantSum)
	}
	// Re-registration keeps the first bucket layout.
	if h2 := r.Histogram("h", []float64{1}); h2 != h {
		t.Error("re-registration returned a different histogram")
	}
}

// testSnapshot builds a snapshot exercising every point type.
func testSnapshot() *Snapshot {
	r := NewRegistry()
	r.Counter("profiler.flushes").Add(3)
	r.Counter("osim.major").Add(41)
	r.Gauge("image.text_bytes").Set(123456)
	r.Gauge("run.cpu_nanos").Set(0.125)
	h := r.Histogram("osim.read_pages", []float64{1, 8, 32})
	h.Observe(1)
	h.Observe(9)
	h.Observe(1000)
	s := r.StartSpan("image.snapshot")
	time.Sleep(time.Microsecond)
	s.End()
	tl := r.Timeline("osim.faults", "offset", "page", "major", "io_nanos")
	tl.Record(".text", 4096, 1, 1, 96000)
	tl.Record(".svm_heap", 413696, 101, 0, 96000)
	return r.Snapshot()
}

// TestJSONSinkRoundTrip writes a snapshot through the JSON sink and reads
// it back unchanged.
func TestJSONSinkRoundTrip(t *testing.T) {
	snap := testSnapshot()
	var buf bytes.Buffer
	if err := (JSONSink{W: &buf, Indent: true}).Write(snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Errorf("json round trip mismatch:\ngot  %+v\nwant %+v", got, snap)
	}
}

// TestCSVSinkRoundTrip writes a snapshot through the CSV sink and reads it
// back unchanged.
func TestCSVSinkRoundTrip(t *testing.T) {
	snap := testSnapshot()
	var buf bytes.Buffer
	if err := (CSVSink{W: &buf}).Write(snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Errorf("csv round trip mismatch:\ngot  %+v\nwant %+v", got, snap)
	}
}

// TestFlushWritesAllSinks checks Flush fan-out and the MemorySink.
func TestFlushWritesAllSinks(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	mem := &MemorySink{}
	var buf bytes.Buffer
	r.Attach(mem)
	r.Attach(JSONSink{W: &buf})
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := len(mem.Snapshots()); n != 1 {
		t.Fatalf("memory sink snapshots = %d, want 1", n)
	}
	if mem.Snapshots()[0].Counter("c") != 1 {
		t.Error("memory sink snapshot missing counter")
	}
	if buf.Len() == 0 {
		t.Error("json sink received nothing")
	}
}

// TestDetachedPathAllocatesNothing is the regression test for the no-sink
// fast path: with a nil registry, every instrumentation-site operation must
// be allocation-free (and hence effectively free), so Tier-1 benchmarks are
// unaffected when observability is off.
func TestDetachedPathAllocatesNothing(t *testing.T) {
	var r *Registry
	allocs := testing.AllocsPerRun(1000, func() {
		if r.Enabled() {
			t.Fatal("nil registry claims enabled")
		}
		c := r.Counter("x")
		c.Add(1)
		c.Inc()
		g := r.Gauge("y")
		g.Set(2)
		h := r.Histogram("z", nil)
		h.Observe(3)
		tl := r.Timeline("t", "a", "b")
		tl.Record("label", 1, 2)
		s := r.StartSpan("span")
		s.End()
	})
	if allocs != 0 {
		t.Errorf("detached path allocates %.1f per op, want 0", allocs)
	}
}
