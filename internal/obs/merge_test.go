package obs

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
)

func TestMergeSnapshotsEmpty(t *testing.T) {
	m := MergeSnapshots()
	if m.Schema != SchemaVersion {
		t.Errorf("schema = %q", m.Schema)
	}
	if len(m.Counters)+len(m.Gauges)+len(m.Histograms)+len(m.Spans)+len(m.Timelines) != 0 {
		t.Errorf("empty merge not empty: %+v", m)
	}
	if m2 := MergeSnapshots(nil, nil); len(m2.Counters) != 0 {
		t.Errorf("nil snapshots not skipped: %+v", m2)
	}
}

func TestMergeSnapshotsScalars(t *testing.T) {
	a := &Snapshot{
		Counters: []CounterPoint{{Name: "c.shared", Value: 3}, {Name: "c.only_a", Value: 1}},
		Gauges:   []GaugePoint{{Name: "g", Value: 1.5}},
	}
	b := &Snapshot{
		Counters: []CounterPoint{{Name: "c.shared", Value: 4}},
		Gauges:   []GaugePoint{{Name: "g", Value: 2.5}, {Name: "g.only_b", Value: 9}},
	}
	m := MergeSnapshots(a, nil, b)
	if got := m.Counter("c.shared"); got != 7 {
		t.Errorf("shared counter = %d, want 7", got)
	}
	if got := m.Counter("c.only_a"); got != 1 {
		t.Errorf("only_a = %d", got)
	}
	// Gauges keep the last value in argument order.
	if got := m.Gauge("g"); got != 2.5 {
		t.Errorf("gauge = %v, want last-wins 2.5", got)
	}
	if got := m.Gauge("g.only_b"); got != 9 {
		t.Errorf("only_b gauge = %v", got)
	}
	// Output is name-sorted like Registry.Snapshot.
	if m.Counters[0].Name != "c.only_a" || m.Counters[1].Name != "c.shared" {
		t.Errorf("counters unsorted: %+v", m.Counters)
	}
}

func TestMergeSnapshotsHistograms(t *testing.T) {
	bounds := []float64{1, 10}
	a := &Snapshot{Histograms: []HistogramPoint{
		{Name: "h", Bounds: bounds, Counts: []int64{1, 2, 3}, Count: 6, Sum: 30},
	}}
	b := &Snapshot{Histograms: []HistogramPoint{
		{Name: "h", Bounds: bounds, Counts: []int64{4, 0, 1}, Count: 5, Sum: 12},
	}}
	m := MergeSnapshots(a, b)
	h := m.Histograms[0]
	if !reflect.DeepEqual(h.Counts, []int64{5, 2, 4}) || h.Count != 11 || h.Sum != 42 {
		t.Errorf("merged histogram: %+v", h)
	}

	// Mismatched bounds: first layout kept, totals still accumulate.
	c := &Snapshot{Histograms: []HistogramPoint{
		{Name: "h", Bounds: []float64{5}, Counts: []int64{7, 7}, Count: 14, Sum: 100},
	}}
	m = MergeSnapshots(a, c)
	h = m.Histograms[0]
	if !reflect.DeepEqual(h.Bounds, bounds) || !reflect.DeepEqual(h.Counts, []int64{1, 2, 3}) {
		t.Errorf("mismatched bounds must keep first layout: %+v", h)
	}
	if h.Count != 20 || h.Sum != 130 {
		t.Errorf("totals must accumulate despite bound mismatch: %+v", h)
	}
}

func TestMergeSnapshotsSequenceRebasing(t *testing.T) {
	// Fixtures shaped like the osim.faults timeline: the trailing "section"
	// column carries the section index, which must survive rebasing —
	// sequence numbers shift, the per-event values do not.
	faultFields := []string{"offset", "page", "major", "io_nanos", "section"}
	a := &Snapshot{
		Spans: []SpanPoint{{Seq: 1, Name: "build"}, {Seq: 3, Name: "link"}},
		Timelines: []TimelinePoint{{
			Name: "osim.faults", Fields: faultFields,
			Events: []TimelineEvent{{Seq: 2, Label: ".text", Values: []int64{4096, 1, 1, 96000, 0}}},
		}},
	}
	b := &Snapshot{
		Spans: []SpanPoint{{Seq: 1, Name: "build2"}},
		Timelines: []TimelinePoint{{
			Name: "osim.faults", Fields: faultFields,
			Events: []TimelineEvent{{Seq: 2, Label: ".svm_heap", Values: []int64{40960, 10, 0, 0, 1}}},
		}},
	}
	m := MergeSnapshots(a, b)
	// b's events are rebased past a's max seq (3): order a then b.
	wantSpans := []SpanPoint{{Seq: 1, Name: "build"}, {Seq: 3, Name: "link"}, {Seq: 4, Name: "build2"}}
	if !reflect.DeepEqual(m.Spans, wantSpans) {
		t.Errorf("spans = %+v, want %+v", m.Spans, wantSpans)
	}
	tl := m.Timeline("osim.faults")
	if tl == nil || len(tl.Events) != 2 {
		t.Fatalf("timeline = %+v", tl)
	}
	if !reflect.DeepEqual(tl.Fields, faultFields) {
		t.Errorf("merged fields = %v", tl.Fields)
	}
	if tl.Events[0].Label != ".text" || tl.Events[0].Seq != 2 {
		t.Errorf("first event: %+v", tl.Events[0])
	}
	if tl.Events[1].Label != ".svm_heap" || tl.Events[1].Seq != 5 {
		t.Errorf("rebased event: %+v", tl.Events[1])
	}
	// The section column (and every other value) is untouched by the merge:
	// merged snapshots from parallel builds remain attributable by index.
	if !reflect.DeepEqual(tl.Events[0].Values, []int64{4096, 1, 1, 96000, 0}) {
		t.Errorf("first event values mutated: %+v", tl.Events[0].Values)
	}
	if !reflect.DeepEqual(tl.Events[1].Values, []int64{40960, 10, 0, 0, 1}) {
		t.Errorf("rebased event values mutated: %+v", tl.Events[1].Values)
	}
}

// Merging real registry snapshots must be deterministic in argument order.
func TestMergeSnapshotsRegistries(t *testing.T) {
	snap := func(n int64) *Snapshot {
		r := NewRegistry()
		r.Counter("work").Add(n)
		r.Gauge("last").Set(float64(n))
		sp := r.StartSpan("stage")
		sp.End()
		return r.Snapshot()
	}
	a, b := snap(1), snap(2)
	m1 := MergeSnapshots(a, b)
	m2 := MergeSnapshots(a, b)
	if !reflect.DeepEqual(m1, m2) {
		t.Error("merge not deterministic")
	}
	if m1.Counter("work") != 3 || m1.Gauge("last") != 2 {
		t.Errorf("merged registry values: %+v", m1)
	}
	if len(m1.Spans) != 2 {
		t.Errorf("spans = %+v", m1.Spans)
	}
}

// TestMergeSnapshotsStreamHistograms is the serve-SLO merge contract:
// per-stream latency histograms recorded by independent registries (one
// per concurrent stream, as the multi-stream serve harness does) merge
// into quantiles identical to a single histogram observing the union of
// all samples, regardless of merge order.
func TestMergeSnapshotsStreamHistograms(t *testing.T) {
	bounds := LatencyBuckets()
	streams := [][]float64{
		{150, 900, 42e3, 1.5e6, 300},
		{75, 75, 2.1e6, 512, 64e3},
		{9e6, 250, 250, 1e3, 33e3},
	}
	var snaps []*Snapshot
	union := NewRegistry()
	uh := union.Histogram("serve.latency_nanos", bounds)
	for _, samples := range streams {
		r := NewRegistry()
		h := r.Histogram("serve.latency_nanos", bounds)
		for _, v := range samples {
			h.Observe(v)
			uh.Observe(v)
		}
		snaps = append(snaps, r.Snapshot())
	}
	want := union.Snapshot().Histograms[0]

	merged := MergeSnapshots(snaps...)
	reversed := MergeSnapshots(snaps[2], snaps[1], snaps[0])
	for _, m := range []*Snapshot{merged, reversed} {
		if len(m.Histograms) != 1 {
			t.Fatalf("merged %d histograms, want 1", len(m.Histograms))
		}
		got := m.Histograms[0]
		if got.Count != want.Count || got.Sum != want.Sum {
			t.Errorf("merged count/sum %d/%v, want %d/%v", got.Count, got.Sum, want.Count, want.Sum)
		}
		if !reflect.DeepEqual(got.Counts, want.Counts) {
			t.Errorf("merged bucket counts %v, want union %v", got.Counts, want.Counts)
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			if got.Quantile(q) != want.Quantile(q) {
				t.Errorf("merged q%v = %v, union = %v", q, got.Quantile(q), want.Quantile(q))
			}
		}
	}
}

// TestMergeSnapshotsTenantTimelines is the fleet merge contract: the
// per-tenant burst timelines the fleet harness records (one timeline per
// tenant inside each build's registry) merge order-independently — every
// tenant keeps its own event stream with the values untouched and the
// per-snapshot event order preserved, no matter which build's snapshot
// is merged first.
func TestMergeSnapshotsTenantTimelines(t *testing.T) {
	burstFields := []string{"requests", "p50_nanos", "p99_nanos", "major", "minor", "refaults", "evicted", "resident"}
	build := func(seed int64) *Snapshot {
		r := NewRegistry()
		for tenant := 0; tenant < 2; tenant++ {
			tl := r.Timeline(fmt.Sprintf("fleet.tenant%02d.burst", tenant), burstFields...)
			for b := int64(0); b < 3; b++ {
				tl.Record(fmt.Sprintf("burst%d", b),
					8, 100*seed+b, 900*seed+b, seed, 2*seed, b, 4*b, 96-b)
			}
		}
		return r.Snapshot()
	}
	a, b := build(1), build(2)
	forward := MergeSnapshots(a, b)
	reversed := MergeSnapshots(b, a)

	for tenant := 0; tenant < 2; tenant++ {
		name := fmt.Sprintf("fleet.tenant%02d.burst", tenant)
		fw, rv := forward.Timeline(name), reversed.Timeline(name)
		if fw == nil || rv == nil {
			t.Fatalf("tenant timeline %s lost in merge", name)
		}
		if !reflect.DeepEqual(fw.Fields, burstFields) {
			t.Errorf("%s fields = %v", name, fw.Fields)
		}
		if len(fw.Events) != 6 || len(rv.Events) != 6 {
			t.Fatalf("%s events: forward %d, reversed %d, want 6", name, len(fw.Events), len(rv.Events))
		}
		// The same (label, values) multiset lands regardless of merge order:
		// only the sequence rebasing — hence which build's events come
		// first — depends on argument order.
		strip := func(evs []TimelineEvent) []TimelineEvent {
			out := make([]TimelineEvent, len(evs))
			copy(out, evs)
			for i := range out {
				out[i].Seq = 0
			}
			sort.Slice(out, func(i, j int) bool {
				if out[i].Label != out[j].Label {
					return out[i].Label < out[j].Label
				}
				return out[i].Values[1] < out[j].Values[1]
			})
			return out
		}
		if !reflect.DeepEqual(strip(fw.Events), strip(rv.Events)) {
			t.Errorf("%s: merge order changed the per-tenant events\nforward:  %+v\nreversed: %+v",
				name, fw.Events, rv.Events)
		}
		// Within one merge, each snapshot's events keep their relative order
		// and their values: the three bursts of each build stay contiguous
		// and ascending.
		for i := 1; i < 3; i++ {
			if fw.Events[i].Seq <= fw.Events[i-1].Seq {
				t.Errorf("%s: first build's bursts reordered: %+v", name, fw.Events[:3])
			}
		}
		if !reflect.DeepEqual(fw.Events[0].Values, []int64{8, 100, 900, 1, 2, 0, 0, 96}) {
			t.Errorf("%s: first burst values mutated: %+v", name, fw.Events[0].Values)
		}
	}
}
