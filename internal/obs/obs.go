// Package obs is the toolchain's observability layer: a lightweight,
// allocation-conscious metrics registry (counters, gauges, histograms with
// fixed bucket layouts), span-style scoped timers, and labelled event
// timelines, with pluggable output sinks (JSON, CSV, in-memory).
//
// The paper's entire argument rests on measurement — page faults per
// section, profiling overhead, cross-build match rates (Secs. 5 and 7) — so
// every subsystem reports here: the image builder times its pipeline
// stages, the OS simulator records a time-ordered fault timeline, the
// profiler counts probes and dumped bytes, the matcher reports per-strategy
// match/collision rates, and the interpreter reports its instruction mix.
//
// Detached operation is free by design: a nil *Registry is the "no sink
// attached" state. Every constructor and recording method is nil-safe and
// returns/accepts nil handles, so instrumentation sites compile down to a
// nil check when observability is off — the Tier-1 benchmarks run with a
// nil registry and measure no difference (see TestDetachedPathAllocates-
// Nothing for the enforced allocation bound).
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SchemaVersion tags every serialized snapshot so future readers can detect
// layout changes.
const SchemaVersion = "nimage.obs/v1"

// Registry holds the live metrics of one observed activity (an image build,
// a profiling run, one cold start). A nil *Registry is valid and records
// nothing at zero cost.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	timelines map[string]*Timeline
	spans     []SpanPoint
	sinks     []Sink
	seq       atomic.Int64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		hists:     make(map[string]*Histogram),
		timelines: make(map[string]*Timeline),
	}
}

// Enabled reports whether the registry records anything. Instrumentation
// sites that need more than a handle lookup should guard on it.
func (r *Registry) Enabled() bool { return r != nil }

// nextSeq returns the next value of the registry-global event sequence,
// which orders spans and timeline events relative to each other.
func (r *Registry) nextSeq() int64 { return r.seq.Add(1) }

// Counter returns (registering on first use) the named counter, or nil when
// the registry is detached.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge, or nil when the
// registry is detached.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram with the
// given fixed bucket upper bounds (ascending; an implicit +Inf bucket is
// appended), or nil when the registry is detached. A histogram keeps the
// bounds of its first registration.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Timeline returns (registering on first use) the named event timeline with
// the given value-column names, or nil when the registry is detached. A
// timeline keeps the fields of its first registration.
func (r *Registry) Timeline(name string, fields ...string) *Timeline {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.timelines[name]
	if t == nil {
		// Copy fields so the variadic argument never escapes: detached
		// call sites must stay allocation-free.
		t = &Timeline{r: r, fields: append([]string(nil), fields...)}
		r.timelines[name] = t
	}
	return t
}

// Counter is a monotonically increasing int64 metric. Nil-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float64 metric. Nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket-layout distribution metric: observation v is
// counted in the first bucket whose upper bound satisfies v <= bound, or in
// the implicit overflow bucket. Nil-safe.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: v <= bound bucket
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed values
// by linear interpolation inside the bucket containing the rank, the
// Prometheus histogram_quantile estimator. Returns NaN when empty; the
// overflow bucket clamps to the highest bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return histQuantile(h.bounds, counts, total, q)
}

// Quantile estimates the q-quantile of a snapshotted histogram, with the
// same interpolation as Histogram.Quantile.
func (p HistogramPoint) Quantile(q float64) float64 {
	return histQuantile(p.Bounds, p.Counts, p.Count, q)
}

// histQuantile walks cumulative bucket counts to the bucket holding rank
// q*total and interpolates linearly between the bucket's bounds. Buckets
// are (lower, upper] with an implicit lower bound of 0 for the first —
// the histograms here record non-negative quantities (nanos, pages).
func histQuantile(bounds []float64, counts []int64, total int64, q float64) float64 {
	if total <= 0 || len(counts) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(bounds) {
			// Overflow bucket: no upper bound to interpolate toward.
			if len(bounds) == 0 {
				return math.NaN()
			}
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		frac := (rank - prev) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lo + (hi-lo)*frac
	}
	if len(bounds) == 0 {
		return math.NaN()
	}
	return bounds[len(bounds)-1]
}

// Span is a scoped timer started by StartSpan and completed by End. The
// zero Span (from a detached registry) is valid and free.
type Span struct {
	r     *Registry
	name  string
	seq   int64
	start time.Time
}

// StartSpan begins a named scoped timer. On a detached registry this
// returns the zero Span without reading the clock.
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, name: name, seq: r.nextSeq(), start: time.Now()}
}

// End completes the span, recording its wall-clock duration, and returns
// that duration (0 for the zero Span).
func (s Span) End() time.Duration {
	if s.r == nil {
		return 0
	}
	d := time.Since(s.start)
	s.r.mu.Lock()
	s.r.spans = append(s.r.spans, SpanPoint{Seq: s.seq, Name: s.name, DurationNanos: d.Nanoseconds()})
	s.r.mu.Unlock()
	return d
}

// Timeline is an append-only stream of labelled events with fixed int64
// value columns — e.g. the per-section page-fault timeline of a run, which
// turns the static Fig. 6 grid into a time-ordered fault plot. Nil-safe.
type Timeline struct {
	r      *Registry
	fields []string
	mu     sync.Mutex
	events []TimelineEvent
}

// TimelineEvent is one recorded event. Values parallel the timeline's
// field names.
type TimelineEvent struct {
	Seq    int64   `json:"seq"`
	Label  string  `json:"label"`
	Values []int64 `json:"values"`
}

// Record appends one event with the given label and column values.
func (t *Timeline) Record(label string, values ...int64) {
	if t == nil {
		return
	}
	vs := make([]int64, len(values))
	copy(vs, values)
	ev := TimelineEvent{Seq: t.r.nextSeq(), Label: label, Values: vs}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Len returns the number of recorded events (0 for nil).
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Snapshot point types: the serializable, order-stable view of a registry.
type (
	// CounterPoint is one counter's snapshot.
	CounterPoint struct {
		Name  string `json:"name"`
		Value int64  `json:"value"`
	}
	// GaugePoint is one gauge's snapshot.
	GaugePoint struct {
		Name  string  `json:"name"`
		Value float64 `json:"value"`
	}
	// HistogramPoint is one histogram's snapshot: Counts has one entry per
	// bound plus the trailing overflow bucket.
	HistogramPoint struct {
		Name   string    `json:"name"`
		Bounds []float64 `json:"bounds"`
		Counts []int64   `json:"counts"`
		Count  int64     `json:"count"`
		Sum    float64   `json:"sum"`
	}
	// SpanPoint is one completed span.
	SpanPoint struct {
		Seq           int64  `json:"seq"`
		Name          string `json:"name"`
		DurationNanos int64  `json:"duration_nanos"`
	}
	// TimelinePoint is one timeline with all its events in sequence order.
	TimelinePoint struct {
		Name   string          `json:"name"`
		Fields []string        `json:"fields"`
		Events []TimelineEvent `json:"events"`
	}
)

// Snapshot is a point-in-time copy of a registry, sorted deterministically
// (metrics by name, spans and events by sequence).
type Snapshot struct {
	Schema     string           `json:"schema"`
	Counters   []CounterPoint   `json:"counters,omitempty"`
	Gauges     []GaugePoint     `json:"gauges,omitempty"`
	Histograms []HistogramPoint `json:"histograms,omitempty"`
	Spans      []SpanPoint      `json:"spans,omitempty"`
	Timelines  []TimelinePoint  `json:"timelines,omitempty"`
}

// Counter returns the named counter value from the snapshot (0 if absent).
func (s *Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge value from the snapshot (0 if absent).
func (s *Snapshot) Gauge(name string) float64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Span returns the named span's duration (the first occurrence) and whether
// it was found.
func (s *Snapshot) Span(name string) (time.Duration, bool) {
	for _, sp := range s.Spans {
		if sp.Name == name {
			return time.Duration(sp.DurationNanos), true
		}
	}
	return 0, false
}

// Timeline returns the named timeline point, or nil.
func (s *Snapshot) Timeline(name string) *TimelinePoint {
	for i := range s.Timelines {
		if s.Timelines[i].Name == name {
			return &s.Timelines[i]
		}
	}
	return nil
}

// Snapshot copies the registry's current state. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{Schema: SchemaVersion}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters = append(snap.Counters, CounterPoint{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		snap.Gauges = append(snap.Gauges, GaugePoint{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hp := HistogramPoint{
			Name:   name,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			hp.Counts[i] = h.counts[i].Load()
		}
		snap.Histograms = append(snap.Histograms, hp)
	}
	for name, t := range r.timelines {
		t.mu.Lock()
		tp := TimelinePoint{
			Name:   name,
			Fields: append([]string(nil), t.fields...),
			Events: append([]TimelineEvent(nil), t.events...),
		}
		t.mu.Unlock()
		sort.Slice(tp.Events, func(i, j int) bool { return tp.Events[i].Seq < tp.Events[j].Seq })
		snap.Timelines = append(snap.Timelines, tp)
	}
	snap.Spans = append(snap.Spans, r.spans...)
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	sort.Slice(snap.Spans, func(i, j int) bool { return snap.Spans[i].Seq < snap.Spans[j].Seq })
	sort.Slice(snap.Timelines, func(i, j int) bool { return snap.Timelines[i].Name < snap.Timelines[j].Name })
	return snap
}

// Attach adds a sink that Flush writes snapshots to. No-op when detached.
func (r *Registry) Attach(s Sink) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sinks = append(r.sinks, s)
	r.mu.Unlock()
}

// Flush snapshots the registry and writes the snapshot to every attached
// sink, returning the first error. No-op when detached.
func (r *Registry) Flush() error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	r.mu.Lock()
	sinks := append([]Sink(nil), r.sinks...)
	r.mu.Unlock()
	var first error
	for _, s := range sinks {
		if err := s.Write(snap); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// DurationBuckets is the fixed bucket layout for durations, in nanoseconds
// (1µs … 10s, decades).
func DurationBuckets() []float64 {
	return []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}
}

// SizeBuckets is the fixed bucket layout for byte/word sizes (64 … 4Mi,
// powers of four).
func SizeBuckets() []float64 {
	return []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304}
}

// LatencyBuckets is the fine-grained bucket layout for request latencies
// in nanoseconds (1µs … 1s, 1-2-5 steps) — decade buckets are too coarse
// for p99 interpolation over serve-mode bursts.
func LatencyBuckets() []float64 {
	return []float64{
		1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5,
		1e6, 2e6, 5e6, 1e7, 2e7, 5e7, 1e8, 2e8, 5e8, 1e9,
	}
}
