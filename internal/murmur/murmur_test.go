package murmur

import (
	"testing"
	"testing/quick"
)

// Reference vectors for MurmurHash3 x64 128-bit, seed 0 (cross-checked
// against the canonical C++ implementation).
var refVectors = []struct {
	in     string
	h1, h2 uint64
}{
	{"", 0x0000000000000000, 0x0000000000000000},
	{"hello", 0xcbd8a7b341bd9b02, 0x5b1e906a48ae1d19},
	{"hello, world", 0x342fac623a5ebc8e, 0x4cdcbc079642414d},
	{"19 Jan 2038 at 3:14:07 AM", 0xb89e5988b737affc, 0x664fc2950231b2cb},
	{"The quick brown fox jumps over the lazy dog.", 0xcd99481f9ee902c9, 0x695da1a38987b6e7},
}

func TestSum128ReferenceVectors(t *testing.T) {
	for _, v := range refVectors {
		h1, h2 := Sum128([]byte(v.in), 0)
		if h1 != v.h1 || h2 != v.h2 {
			t.Errorf("Sum128(%q) = %#x, %#x; want %#x, %#x", v.in, h1, h2, v.h1, v.h2)
		}
	}
}

func TestSum64MatchesSum128FirstWord(t *testing.T) {
	f := func(data []byte) bool {
		h1, _ := Sum128(data, 0)
		return Sum64(data) == h1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSum128Deterministic(t *testing.T) {
	f := func(data []byte, seed uint64) bool {
		a1, a2 := Sum128(data, seed)
		b1, b2 := Sum128(data, seed)
		return a1 == b1 && a2 == b2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSum128InputNotMutated(t *testing.T) {
	data := []byte("do not mutate me, hash function")
	orig := string(data)
	Sum128(data, 12345)
	if string(data) != orig {
		t.Fatalf("input mutated: %q", data)
	}
}

func TestSum128SeedChangesHash(t *testing.T) {
	data := []byte("seed sensitivity")
	a, _ := Sum128(data, 1)
	b, _ := Sum128(data, 2)
	if a == b {
		t.Fatalf("different seeds produced identical hash %#x", a)
	}
}

// TestSum64SingleBitFlips checks a weak avalanche property: flipping any
// single input bit changes the 64-bit digest. MurmurHash3 guarantees this
// easily for short inputs; the ID strategies rely on distinct encodings
// mapping to distinct IDs with overwhelming probability.
func TestSum64SingleBitFlips(t *testing.T) {
	base := []byte("object-identity-encoding-0123456789")
	h0 := Sum64(base)
	for i := range base {
		for b := 0; b < 8; b++ {
			mod := make([]byte, len(base))
			copy(mod, base)
			mod[i] ^= 1 << b
			if Sum64(mod) == h0 {
				t.Fatalf("bit flip at byte %d bit %d did not change digest", i, b)
			}
		}
	}
}

func TestSum64TailLengths(t *testing.T) {
	// Exercise every tail-switch arm: lengths 0..48 must all hash, be
	// deterministic, and be pairwise distinct for this structured input.
	seen := make(map[uint64]int)
	buf := make([]byte, 48)
	for i := range buf {
		buf[i] = byte(i*7 + 3)
	}
	for n := 0; n <= len(buf); n++ {
		h := Sum64(buf[:n])
		if prev, dup := seen[h]; dup {
			t.Fatalf("lengths %d and %d collide on %#x", prev, n, h)
		}
		seen[h] = n
	}
}

func BenchmarkSum64_64B(b *testing.B) {
	data := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		Sum64(data)
	}
}

func BenchmarkSum64_1KiB(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		Sum64(data)
	}
}
