// Package murmur implements MurmurHash3, the hash function used by the
// structural-hash and heap-path object-identity strategies.
//
// The paper (Sec. 5.2) uses MurmurHash3 because it is fast, produces
// well-distributed values, and is suited to finding matching byte arrays.
// This package provides the x64 128-bit variant and a 64-bit convenience
// digest (the low word of the 128-bit result), which is the width of the
// object IDs exchanged between the instrumented and the optimized build.
package murmur

import "encoding/binary"

const (
	c1 = 0x87c37b91114253d5
	c2 = 0x4cf5ad432745937f
)

// Sum128 computes the MurmurHash3 x64 128-bit hash of data with the given
// seed and returns the two 64-bit words of the digest.
func Sum128(data []byte, seed uint64) (uint64, uint64) {
	h1, h2 := seed, seed
	n := len(data)

	// Body: process 16-byte blocks.
	full := n / 16 * 16
	for i := 0; i < full; i += 16 {
		k1 := binary.LittleEndian.Uint64(data[i:])
		k2 := binary.LittleEndian.Uint64(data[i+8:])

		k1 *= c1
		k1 = rotl(k1, 31)
		k1 *= c2
		h1 ^= k1

		h1 = rotl(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= c2
		k2 = rotl(k2, 33)
		k2 *= c1
		h2 ^= k2

		h2 = rotl(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	// Tail: up to 15 remaining bytes.
	var k1, k2 uint64
	tail := data[full:]
	switch len(tail) & 15 {
	case 15:
		k2 ^= uint64(tail[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(tail[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(tail[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(tail[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(tail[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(tail[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(tail[8])
		k2 *= c2
		k2 = rotl(k2, 33)
		k2 *= c1
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(tail[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(tail[0])
		k1 *= c1
		k1 = rotl(k1, 31)
		k1 *= c2
		h1 ^= k1
	}

	// Finalization.
	h1 ^= uint64(n)
	h2 ^= uint64(n)

	h1 += h2
	h2 += h1

	h1 = fmix64(h1)
	h2 = fmix64(h2)

	h1 += h2
	h2 += h1

	return h1, h2
}

// Sum64 computes a 64-bit MurmurHash3 digest of data (the first word of the
// x64 128-bit digest) with seed zero. This is the hash used for object IDs.
func Sum64(data []byte) uint64 {
	h1, _ := Sum128(data, 0)
	return h1
}

// Sum64Seed is Sum64 with an explicit seed.
func Sum64Seed(data []byte, seed uint64) uint64 {
	h1, _ := Sum128(data, seed)
	return h1
}

func rotl(x uint64, r uint) uint64 {
	return x<<r | x>>(64-r)
}

// fmix64 is the MurmurHash3 64-bit finalizer; it forces avalanche on the
// final hash words.
func fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}
