module nimage

go 1.22
